/**
 * @file
 * Selectable softfp execution backends.
 *
 * `Soft` is the original bit-level IEEE-754 implementation (fp64.hh),
 * kept as the reference. `HostFast` computes add, subtract, multiply,
 * float, and truncate with native host doubles — legal because those
 * units are documented bit-exact IEEE-754 round-to-nearest-even, so a
 * conforming host FPU produces the same bit patterns — and detects
 * the flag-bearing and special cases cheaply, falling back to the
 * `Soft` path for them:
 *
 *  - any NaN, infinity, zero, or subnormal operand;
 *  - results that leave the safely-normal range (overflow, underflow
 *    to subnormal/zero, exact cancellation, the top normal binade,
 *    and for multiplication also the bottom one, where rounding can
 *    happen at subnormal granularity);
 *  - the paper-specific reciprocal-approximation and iteration-step
 *    units, which always use the table-driven Soft implementation.
 *
 * Inside the guarded range the only IEEE flag an operation can raise
 * is inexact, which is recovered exactly without touching the host
 * floating-point environment: addition uses the Møller/Knuth TwoSum
 * error term (the rounding error of an addition is itself always
 * representable), multiplication counts significant product bits with
 * a 128-bit integer multiply, and the conversions use pure integer
 * significand checks. tests/test_softfp_backend.cc cross-checks both
 * backends for identical result bits *and* identical Flags on a
 * directed special-case corpus plus randomized sweeps.
 */

#ifndef MTFPU_SOFTFP_BACKEND_HH
#define MTFPU_SOFTFP_BACKEND_HH

#include <cstdint>

#include "softfp/fp64.hh"

namespace mtfpu::softfp
{

/** Which softfp implementation executes FPU ALU elements. */
enum class Backend : uint8_t
{
    Soft,     // bit-level reference implementation
    HostFast, // native host FP fast path with Soft fallback
};

/** Human-readable backend name ("soft" / "host-fast"). */
const char *backendName(Backend backend);

/** Addition via the host FPU; bit- and flag-identical to fpAdd. */
uint64_t fpAddHost(uint64_t a, uint64_t b, Flags &flags);
/** Subtraction via the host FPU; bit- and flag-identical to fpSub. */
uint64_t fpSubHost(uint64_t a, uint64_t b, Flags &flags);
/** Multiplication via the host FPU; bit- and flag-identical to fpMul. */
uint64_t fpMulHost(uint64_t a, uint64_t b, Flags &flags);
/** int64 -> double via the host FPU; identical to fpFloat. */
uint64_t fpFloatHost(uint64_t a, Flags &flags);
/** double -> int64 via the host FPU; identical to fpTruncate. */
uint64_t fpTruncateHost(uint64_t a, Flags &flags);

/**
 * Backend-dispatching variant of fpuOperate (Figure-4 unit/func
 * table). Identical results and flags for either backend.
 */
uint64_t fpuOperate(Backend backend, unsigned unit, unsigned func,
                    uint64_t a, uint64_t b, Flags &flags);

} // namespace mtfpu::softfp

#endif // MTFPU_SOFTFP_BACKEND_HH
