/**
 * @file
 * Internals of the reciprocal-approximation unit, exposed so the test
 * suite can check the table construction and the seed accuracy bound.
 */

#ifndef MTFPU_SOFTFP_RECIP_HH
#define MTFPU_SOFTFP_RECIP_HH

#include <array>
#include <cstdint>

namespace mtfpu::softfp
{

/** Number of interpolation intervals across the mantissa range [1, 2). */
constexpr unsigned kRecipTableSize = 256;

/**
 * One chord-interpolation entry: the value of 1/x at the left edge of
 * the interval and the (negative) slope to the right edge, both as
 * host doubles (the table is a design-time constant in the hardware).
 */
struct RecipEntry
{
    double base;
    double slope;
};

/** The interpolation table (built once, deterministic). */
const std::array<RecipEntry, kRecipTableSize> &recipTable();

/**
 * Approximate 1/m for a mantissa m in [1, 2), given its 52-bit
 * fraction field. The result is in (0.5, 1] and accurate to at least
 * 2^-16 relative error (verified exhaustively over all table intervals
 * in the tests).
 */
double recipMantissa(uint64_t frac52);

} // namespace mtfpu::softfp

#endif // MTFPU_SOFTFP_RECIP_HH
