#include "softfp/fp64.hh"

#include <cstring>

#include "common/bitfield.hh"
#include "common/log.hh"

namespace mtfpu::softfp
{

FpClass
classify(uint64_t v)
{
    const uint64_t exp = bits(v, kFracBits, kExpBits);
    const uint64_t frac = v & kFracMask;
    if (exp == 0)
        return frac == 0 ? FpClass::Zero : FpClass::Subnormal;
    if (exp == static_cast<uint64_t>(kExpMax))
        return frac == 0 ? FpClass::Inf : FpClass::NaN;
    return FpClass::Normal;
}

bool
isNaN(uint64_t v)
{
    return classify(v) == FpClass::NaN;
}

bool
isInf(uint64_t v)
{
    return classify(v) == FpClass::Inf;
}

bool
isZero(uint64_t v)
{
    return classify(v) == FpClass::Zero;
}

double
asDouble(uint64_t v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

uint64_t
fromDouble(double d)
{
    uint64_t v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

uint64_t
shiftRightSticky(uint64_t v, unsigned n)
{
    if (n == 0)
        return v;
    if (n >= 64)
        return v != 0 ? 1 : 0;
    uint64_t out = v >> n;
    if (v & lowMask(n))
        out |= 1;
    return out;
}

uint64_t
roundPack(bool sign, int32_t e, uint64_t sig, Flags &flags)
{
    const uint64_t sbit = sign ? kSignBit : 0;

    if (e <= 0) {
        // Result is (possibly) subnormal: denormalize so that a zero
        // exponent field represents the value, then round.
        sig = shiftRightSticky(sig, static_cast<unsigned>(1 - e));
        e = 0;
    }

    const unsigned round_bits = sig & 7;
    uint64_t sig53 = sig >> 3;
    if (round_bits > 4 || (round_bits == 4 && (sig53 & 1)))
        ++sig53;
    if (round_bits != 0)
        flags.inexact = true;

    if (sig53 >> (kFracBits + 1)) {
        // Rounding carried out of the significand.
        sig53 >>= 1;
        ++e;
    }

    if (sig53 & kHiddenBit) {
        // Normal result. A subnormal that rounded up to the smallest
        // normal arrives here with e == 0 and sig53 == 2^52.
        const int32_t exp_field = e == 0 ? 1 : e;
        if (exp_field >= kExpMax) {
            flags.overflow = true;
            flags.inexact = true;
            return sbit | kPlusInf;
        }
        return sbit | (static_cast<uint64_t>(exp_field) << kFracBits) |
               (sig53 & kFracMask);
    }

    // Subnormal (or zero) result. Exact subnormal-range arithmetic can
    // arrive with e == 1 (the uniform subnormal exponent); anything
    // larger with a clear hidden bit is a caller bug.
    if (e > 1)
        panic("roundPack: unnormalized significand for normal exponent");
    if (round_bits != 0)
        flags.underflow = true;
    return sbit | sig53;
}

uint64_t
fpIntMul(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(static_cast<int64_t>(a) *
                                 static_cast<int64_t>(b));
}

uint64_t
fpuOperate(unsigned unit, unsigned func, uint64_t a, uint64_t b,
           Flags &flags)
{
    switch (unit) {
      case 1:
        switch (func) {
          case 0: return fpAdd(a, b, flags);
          case 1: return fpSub(a, b, flags);
          case 2: return fpFloat(a, flags);
          case 3: return fpTruncate(a, flags);
        }
        break;
      case 2:
        switch (func) {
          case 0: return fpMul(a, b, flags);
          case 1: return fpIntMul(a, b);
          case 2: return fpIterStep(a, b, flags);
        }
        break;
      case 3:
        if (func == 0)
            return fpRecipApprox(a, flags);
        break;
    }
    fatal("fpuOperate: reserved unit/func encoding");
}

} // namespace mtfpu::softfp
