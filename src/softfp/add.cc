/**
 * @file
 * The add unit: IEEE-754 binary64 addition and subtraction with
 * round-to-nearest-even. The hardware uses separate specialized paths
 * for aligned operands and normalized results (paper §2.2.3); this
 * model reproduces the arithmetic contract, not the circuit structure.
 */

#include <utility>

#include "common/bitfield.hh"
#include "softfp/fp64.hh"
#include "softfp/unpack.hh"

namespace mtfpu::softfp
{

namespace
{

/**
 * Add magnitudes of two operands with equal signs.
 * Significands are in "bit-55" working form (leading 1 at bit 55,
 * GRS in bits 2..0).
 */
uint64_t
addMagnitudes(bool sign, int32_t ea, uint64_t sa, int32_t eb, uint64_t sb,
              Flags &flags)
{
    if (ea < eb) {
        std::swap(ea, eb);
        std::swap(sa, sb);
    }
    sb = shiftRightSticky(sb, static_cast<unsigned>(ea - eb));
    uint64_t sum = sa + sb;
    if (sum >> 56) {
        sum = shiftRightSticky(sum, 1);
        ++ea;
    }
    return roundPack(sign, ea, sum, flags);
}

/**
 * Subtract the smaller magnitude from the larger; the result carries
 * the larger operand's sign. Exact cancellation yields +0 (the
 * round-to-nearest-even convention).
 */
uint64_t
subMagnitudes(bool sign_a, int32_t ea, uint64_t sa,
              bool sign_b, int32_t eb, uint64_t sb, Flags &flags)
{
    // Order so that (ea, sa) is the strictly larger magnitude.
    bool sign = sign_a;
    if (ea < eb || (ea == eb && sa < sb)) {
        std::swap(ea, eb);
        std::swap(sa, sb);
        sign = sign_b;
    } else if (ea == eb && sa == sb) {
        return 0; // +0
    }

    sb = shiftRightSticky(sb, static_cast<unsigned>(ea - eb));
    uint64_t diff = sa - sb;

    // Renormalize: bring the leading 1 back to bit 55. When the
    // shifted-out sticky bit is set the difference is already within
    // one position of normalized, so no information is lost.
    const unsigned lead = 63 - clz64(diff);
    if (lead < 55) {
        const unsigned shift = 55 - lead;
        diff <<= shift;
        ea -= static_cast<int32_t>(shift);
    }
    return roundPack(sign, ea, diff, flags);
}

} // anonymous namespace

uint64_t
fpAdd(uint64_t a, uint64_t b, Flags &flags)
{
    if (isNaN(a) || isNaN(b))
        return propagateNaN(a, b, flags);

    if (isInf(a) || isInf(b)) {
        if (isInf(a) && isInf(b) && signOf(a) != signOf(b)) {
            flags.invalid = true;
            return kQuietNaN;
        }
        return isInf(a) ? a : b;
    }

    const Operand oa = unpackOperand(a);
    const Operand ob = unpackOperand(b);

    if (oa.cls == FpClass::Zero && ob.cls == FpClass::Zero) {
        // +0 + +0 = +0, -0 + -0 = -0, mixed = +0 (RNE).
        return (oa.sign && ob.sign) ? kSignBit : 0;
    }
    if (oa.cls == FpClass::Zero)
        return b;
    if (ob.cls == FpClass::Zero)
        return a;

    // Working form: 3 guard/round/sticky bits below the significand.
    const uint64_t sa = oa.sig << 3;
    const uint64_t sb = ob.sig << 3;

    if (oa.sign == ob.sign)
        return addMagnitudes(oa.sign, oa.exp, sa, ob.exp, sb, flags);
    return subMagnitudes(oa.sign, oa.exp, sa, ob.sign, ob.exp, sb, flags);
}

uint64_t
fpSub(uint64_t a, uint64_t b, Flags &flags)
{
    if (isNaN(b))
        return propagateNaN(a, b, flags);
    return fpAdd(a, b ^ kSignBit, flags);
}

} // namespace mtfpu::softfp
