/**
 * @file
 * Internal operand-unpacking helpers shared by the softfp units.
 */

#ifndef MTFPU_SOFTFP_UNPACK_HH
#define MTFPU_SOFTFP_UNPACK_HH

#include "common/bitfield.hh"
#include "softfp/fp64.hh"

namespace mtfpu::softfp
{

/** An unpacked finite operand. */
struct Operand
{
    bool sign;
    /**
     * Biased exponent. For subnormals this is 1 (so that
     * value = sig * 2^(exp - bias - 52) holds uniformly).
     */
    int32_t exp;
    /** Significand with hidden bit at position 52 for normals. */
    uint64_t sig;
    FpClass cls;
};

/** Unpack a raw binary64 pattern. */
inline Operand
unpackOperand(uint64_t v)
{
    Operand op;
    op.sign = signOf(v);
    op.cls = classify(v);
    const int32_t exp_field =
        static_cast<int32_t>(bits(v, kFracBits, kExpBits));
    const uint64_t frac = v & kFracMask;
    switch (op.cls) {
      case FpClass::Zero:
        op.exp = 0;
        op.sig = 0;
        break;
      case FpClass::Subnormal:
        op.exp = 1;
        op.sig = frac;
        break;
      case FpClass::Normal:
        op.exp = exp_field;
        op.sig = frac | kHiddenBit;
        break;
      default: // Inf, NaN
        op.exp = exp_field;
        op.sig = frac;
        break;
    }
    return op;
}

/**
 * Normalize a (possibly subnormal) finite nonzero operand so that the
 * hidden bit (bit 52) is set, adjusting the exponent. Used by multiply
 * and divide, which need normalized significands.
 */
inline void
normalizeOperand(Operand &op)
{
    if (op.sig == 0)
        return;
    const unsigned lead = 63 - clz64(op.sig);
    if (lead < kFracBits) {
        const unsigned shift = kFracBits - lead;
        op.sig <<= shift;
        op.exp -= static_cast<int32_t>(shift);
    }
}

/** True for signaling NaN patterns (quiet bit clear). */
inline bool
isSignalingNaN(uint64_t v)
{
    return isNaN(v) && (v & (1ULL << 51)) == 0;
}

/**
 * Propagate NaN: return a quiet version of the first NaN operand,
 * raising invalid only for signaling NaNs.
 */
inline uint64_t
propagateNaN(uint64_t a, uint64_t b, Flags &flags)
{
    if (isSignalingNaN(a) || isSignalingNaN(b))
        flags.invalid = true;
    if (isNaN(a))
        return a | (1ULL << 51); // quiet it
    return b | (1ULL << 51);
}

} // namespace mtfpu::softfp

#endif // MTFPU_SOFTFP_UNPACK_HH
