#include "softfp/backend.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace mtfpu::softfp
{

namespace
{

/** Biased exponent field of a binary64 pattern. */
inline uint32_t
biasedExp(uint64_t v)
{
    return static_cast<uint32_t>((v >> kFracBits) & 0x7ff);
}

/** True for normal (not zero/subnormal/Inf/NaN) patterns. */
inline bool
isNormalBits(uint64_t v)
{
    return biasedExp(v) - 1u < 0x7feu;
}

/**
 * True when the result of a guarded host operation needs the Soft
 * fallback: zero or subnormal (underflow / exact cancellation flags),
 * infinity (overflow), or the top normal binade (kept out of the fast
 * path so the TwoSum error recovery can never overflow internally).
 */
inline bool
resultNeedsFallback(uint64_t r)
{
    return biasedExp(r) - 1u >= 0x7fdu;
}

} // anonymous namespace

const char *
backendName(Backend backend)
{
    return backend == Backend::Soft ? "soft" : "host-fast";
}

uint64_t
fpAddHost(uint64_t a, uint64_t b, Flags &flags)
{
    if (!isNormalBits(a) || !isNormalBits(b))
        return fpAdd(a, b, flags);

    const double da = asDouble(a);
    const double db = asDouble(b);
    const double s = da + db;
    const uint64_t r = fromDouble(s);
    if (resultNeedsFallback(r))
        return fpAdd(a, b, flags);

    // TwoSum: err is the exact rounding error of the addition (always
    // representable for round-to-nearest; no intermediate can overflow
    // with the result capped below the top binade).
    const double bv = s - da;
    const double err = (da - (s - bv)) + (db - bv);
    if (err != 0.0)
        flags.inexact = true;
    return r;
}

uint64_t
fpSubHost(uint64_t a, uint64_t b, Flags &flags)
{
    if (!isNormalBits(a) || !isNormalBits(b))
        return fpSub(a, b, flags);

    const double da = asDouble(a);
    const double db = asDouble(b);
    const double s = da - db;
    const uint64_t r = fromDouble(s);
    if (resultNeedsFallback(r))
        return fpSub(a, b, flags);

    // TwoSum of da + (-db).
    const double bv = s - da;
    const double err = (da - (s - bv)) + (-db - bv);
    if (err != 0.0)
        flags.inexact = true;
    return r;
}

uint64_t
fpMulHost(uint64_t a, uint64_t b, Flags &flags)
{
    if (!isNormalBits(a) || !isNormalBits(b))
        return fpMul(a, b, flags);

    const double p = asDouble(a) * asDouble(b);
    const uint64_t r = fromDouble(p);
    // The bottom normal binade is also excluded: an exact product just
    // below 2^-1022 rounds up into it at subnormal granularity, which
    // the full-precision integer inexactness test below cannot see.
    if (resultNeedsFallback(r) || biasedExp(r) <= 1)
        return fpMul(a, b, flags);

    // Exactness by integer product: the 53x53-bit significand product
    // keeps at most 106 bits; the multiply is exact iff every bit
    // below the 53 retained ones is zero.
    const uint64_t ma = (a & kFracMask) | kHiddenBit;
    const uint64_t mb = (b & kFracMask) | kHiddenBit;
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(ma) * mb;
    const unsigned drop = (prod >> 105) ? 53 : 52;
    if (static_cast<uint64_t>(prod) & lowMask(drop))
        flags.inexact = true;
    return r;
}

uint64_t
fpFloatHost(uint64_t a, Flags &flags)
{
    const int64_t value = static_cast<int64_t>(a);
    if (value == 0)
        return 0;

    const uint64_t mag = value < 0 ? 0 - static_cast<uint64_t>(value)
                                   : static_cast<uint64_t>(value);
    // Exact iff the magnitude spans at most 53 significant bits.
    const unsigned width =
        64u - clz64(mag) - static_cast<unsigned>(__builtin_ctzll(mag));
    if (width > 53)
        flags.inexact = true;
    return fromDouble(static_cast<double>(value));
}

uint64_t
fpTruncateHost(uint64_t a, Flags &flags)
{
    const uint32_t be = biasedExp(a);
    if (be < static_cast<uint32_t>(kExpBias)) {
        // |a| < 1: zero stays exact, everything else truncates to 0.
        if ((a & ~kSignBit) == 0)
            return 0;
        flags.inexact = true;
        return 0;
    }
    if (be > static_cast<uint32_t>(kExpBias) + 62) {
        // NaN, Inf, and the INT64_MIN/saturation boundary.
        return fpTruncate(a, flags);
    }

    const unsigned pow = be - static_cast<unsigned>(kExpBias); // 0..62
    if (pow < static_cast<unsigned>(kFracBits) &&
        (a & lowMask(static_cast<unsigned>(kFracBits) - pow))) {
        flags.inexact = true;
    }
    // |a| < 2^63, so the host conversion is defined and truncates.
    return static_cast<uint64_t>(static_cast<int64_t>(asDouble(a)));
}

uint64_t
fpuOperate(Backend backend, unsigned unit, unsigned func, uint64_t a,
           uint64_t b, Flags &flags)
{
    if (backend == Backend::Soft)
        return fpuOperate(unit, func, a, b, flags);

    switch (unit) {
      case 1:
        switch (func) {
          case 0: return fpAddHost(a, b, flags);
          case 1: return fpSubHost(a, b, flags);
          case 2: return fpFloatHost(a, flags);
          case 3: return fpTruncateHost(a, flags);
        }
        break;
      case 2:
        switch (func) {
          case 0: return fpMulHost(a, b, flags);
          case 1: return fpIntMul(a, b);
          case 2: return fpIterStep(a, b, flags);
        }
        break;
      case 3:
        if (func == 0)
            return fpRecipApprox(a, flags);
        break;
    }
    fatal("fpuOperate: reserved unit/func encoding");
}

} // namespace mtfpu::softfp
