/**
 * @file
 * Bit-level IEEE-754 double-precision operations modeling the MultiTitan
 * FPU functional units (paper §2, Figure 4).
 *
 * The FPU supports only double precision. The operation set is exactly
 * the paper's func/unit table: add, subtract, float (int->fp), truncate
 * (fp->int), multiply, integer multiply, iteration step, and reciprocal
 * approximation. Division is not a primitive; it is the six-operation
 * Newton-Raphson macro sequence described in §2.2.3 (720 ns = 6 x 3
 * cycles at 40 ns).
 *
 * add/sub/mul/float/truncate are bit-exact IEEE-754 round-to-nearest-even
 * (validated against host hardware in the test suite). The reciprocal
 * approximation unit models the paper's 16-bit linear-interpolation seed.
 */

#ifndef MTFPU_SOFTFP_FP64_HH
#define MTFPU_SOFTFP_FP64_HH

#include <cstdint>

namespace mtfpu::softfp
{

/** IEEE-754 exception flags accumulated by the FPU PSW. */
struct Flags
{
    bool overflow = false;
    bool underflow = false;
    bool inexact = false;
    bool invalid = false;
    bool divByZero = false;

    /** OR another flag set into this one. */
    void
    merge(const Flags &other)
    {
        overflow |= other.overflow;
        underflow |= other.underflow;
        inexact |= other.inexact;
        invalid |= other.invalid;
        divByZero |= other.divByZero;
    }

    bool
    any() const
    {
        return overflow || underflow || inexact || invalid || divByZero;
    }

    /** Pack into the PSW bit layout (bit 0 overflow .. bit 4 divByZero). */
    uint8_t
    toBits() const
    {
        return static_cast<uint8_t>(
            (overflow ? 1u : 0u) | (underflow ? 2u : 0u) |
            (inexact ? 4u : 0u) | (invalid ? 8u : 0u) |
            (divByZero ? 16u : 0u));
    }

    /** Inverse of toBits(). */
    static Flags
    fromBits(uint8_t bits)
    {
        Flags f;
        f.overflow = bits & 1u;
        f.underflow = bits & 2u;
        f.inexact = bits & 4u;
        f.invalid = bits & 8u;
        f.divByZero = bits & 16u;
        return f;
    }
};

/** Field layout constants for IEEE-754 binary64. */
constexpr int kFracBits = 52;
constexpr int kExpBits = 11;
constexpr int kExpBias = 1023;
constexpr int kExpMax = 2047;
constexpr uint64_t kFracMask = (1ULL << kFracBits) - 1;
constexpr uint64_t kHiddenBit = 1ULL << kFracBits;
constexpr uint64_t kSignBit = 1ULL << 63;
constexpr uint64_t kPlusInf = 0x7FF0000000000000ULL;
constexpr uint64_t kMinusInf = 0xFFF0000000000000ULL;
/** Canonical quiet NaN produced by invalid operations. */
constexpr uint64_t kQuietNaN = 0x7FF8000000000000ULL;

/** Floating-point value classification. */
enum class FpClass { Zero, Subnormal, Normal, Inf, NaN };

/** Classify a raw binary64 bit pattern. */
FpClass classify(uint64_t bits);

/** True for NaN patterns. */
bool isNaN(uint64_t bits);
/** True for +/-infinity. */
bool isInf(uint64_t bits);
/** True for +/-0. */
bool isZero(uint64_t bits);
/** Sign bit as bool. */
inline bool signOf(uint64_t bits) { return (bits & kSignBit) != 0; }

/** Reinterpret raw bits as a host double (same representation). */
double asDouble(uint64_t bits);
/** Reinterpret a host double as raw bits. */
uint64_t fromDouble(double value);

/**
 * Round and pack a result. @p sig must hold the significand with its
 * leading 1 at bit 55 (i.e. 53 significant bits followed by 3
 * guard/round/sticky bits); the represented value is
 * (-1)^sign * (sig / 2^55) * 2^(e - 1023). Handles overflow to
 * infinity and gradual underflow to subnormals, setting flags.
 */
uint64_t roundPack(bool sign, int32_t e, uint64_t sig, Flags &flags);

/**
 * Shift @p v right by @p n bits, OR-ing any shifted-out bits into the
 * least-significant bit of the result (sticky shift).
 */
uint64_t shiftRightSticky(uint64_t v, unsigned n);

/** Addition, round-to-nearest-even. */
uint64_t fpAdd(uint64_t a, uint64_t b, Flags &flags);
/** Subtraction, round-to-nearest-even. */
uint64_t fpSub(uint64_t a, uint64_t b, Flags &flags);
/** Multiplication, round-to-nearest-even. */
uint64_t fpMul(uint64_t a, uint64_t b, Flags &flags);
/** Integer multiply: low 64 bits of the two's-complement product. */
uint64_t fpIntMul(uint64_t a, uint64_t b);
/** "float": convert a two's-complement int64 register image to double. */
uint64_t fpFloat(uint64_t a, Flags &flags);
/** "truncate": convert double to int64, rounding toward zero. */
uint64_t fpTruncate(uint64_t a, Flags &flags);

/**
 * Reciprocal-approximation unit: a seed for 1/a accurate to at least
 * 16 bits, produced by linear interpolation in a 256-entry table
 * indexed by the top mantissa bits (paper §2.2.3).
 */
uint64_t fpRecipApprox(uint64_t a, Flags &flags);

/**
 * Iteration-step unit (Figure 4, unit 2 func 2): computes x * (2 - t),
 * the Newton-Raphson refinement step for reciprocals. @p x is the
 * current reciprocal estimate, @p t = b * x from the multiply unit.
 */
uint64_t fpIterStep(uint64_t x, uint64_t t, Flags &flags);

/**
 * Architectural division: the six-operation macro sequence
 * recip, mul, iter, mul, iter, mul. Result is within 2 ulp of the
 * correctly rounded quotient (see tests). Special operands (zero,
 * infinity, NaN) are resolved up front as the hardware sequence's
 * software wrapper would.
 */
uint64_t fpDivide(uint64_t a, uint64_t b, Flags &flags);

/**
 * Reference division: bit-exact IEEE-754 round-to-nearest-even
 * quotient computed by long division. Used as the oracle for
 * fpDivide in tests; not an architectural operation.
 */
uint64_t refDivide(uint64_t a, uint64_t b, Flags &flags);

/**
 * Dispatch an FPU ALU operation by its unit/func encoding (Figure 4).
 * Unknown (reserved) encodings raise fatal().
 *
 * @param unit Functional unit field (1=add, 2=multiply, 3=reciprocal).
 * @param func Sub-operation within the unit.
 * @param a First (Ra) operand register image.
 * @param b Second (Rb) operand register image.
 */
uint64_t fpuOperate(unsigned unit, unsigned func, uint64_t a, uint64_t b,
                    Flags &flags);

} // namespace mtfpu::softfp

#endif // MTFPU_SOFTFP_FP64_HH
