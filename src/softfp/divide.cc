/**
 * @file
 * Division support. fpDivide() models the architectural six-operation
 * macro sequence (recip, mul, iter, mul, iter, mul — §2.2.3: "Division
 * is implemented as a series of six 3-cycle operations"); refDivide()
 * is the bit-exact IEEE long-division oracle used by the tests.
 */

#include "common/bitfield.hh"
#include "softfp/fp64.hh"
#include "softfp/unpack.hh"

namespace mtfpu::softfp
{

namespace
{

/**
 * Resolve special-operand cases common to both division paths.
 * @return true if @p result holds the final answer.
 */
bool
divideSpecial(uint64_t a, uint64_t b, Flags &flags, uint64_t &result)
{
    if (isNaN(a) || isNaN(b)) {
        result = propagateNaN(a, b, flags);
        return true;
    }

    const bool sign = signOf(a) != signOf(b);
    const uint64_t sbit = sign ? kSignBit : 0;

    if (isInf(a)) {
        if (isInf(b)) {
            flags.invalid = true;
            result = kQuietNaN;
        } else {
            result = sbit | kPlusInf;
        }
        return true;
    }
    if (isInf(b)) {
        result = sbit;
        return true;
    }
    if (isZero(b)) {
        if (isZero(a)) {
            flags.invalid = true;
            result = kQuietNaN;
        } else {
            flags.divByZero = true;
            result = sbit | kPlusInf;
        }
        return true;
    }
    if (isZero(a)) {
        result = sbit;
        return true;
    }
    return false;
}

} // anonymous namespace

uint64_t
refDivide(uint64_t a, uint64_t b, Flags &flags)
{
    uint64_t special;
    if (divideSpecial(a, b, flags, special))
        return special;

    Operand oa = unpackOperand(a);
    Operand ob = unpackOperand(b);
    normalizeOperand(oa);
    normalizeOperand(ob);

    const bool sign = oa.sign != ob.sign;
    int32_t e = oa.exp - ob.exp + kExpBias;

    // Long division of significands. The quotient m_a / m_b lies in
    // (0.5, 2); pre-shift the numerator so the integer quotient has its
    // leading 1 at bit 55 of the working form.
    unsigned shift = 55;
    if (oa.sig < ob.sig) {
        shift = 56;
        --e;
    }
    const unsigned __int128 num =
        static_cast<unsigned __int128>(oa.sig) << shift;
    uint64_t q = static_cast<uint64_t>(num / ob.sig);
    if (num % ob.sig)
        q |= 1; // sticky

    return roundPack(sign, e, q, flags);
}

uint64_t
fpDivide(uint64_t a, uint64_t b, Flags &flags)
{
    uint64_t special;
    if (divideSpecial(a, b, flags, special))
        return special;

    Operand ob = unpackOperand(b);
    normalizeOperand(ob);

    // Run the Newton-Raphson refinement on the normalized mantissa of b
    // (exponent stripped) so the intermediate products stay comfortably
    // in range; the quotient exponent is applied by roundPack at the
    // final multiply.
    const uint64_t mant_b =
        (static_cast<uint64_t>(kExpBias) << kFracBits) |
        (ob.sig & kFracMask);

    Flags scratch; // intermediate-step inexactness is not architectural
    uint64_t r = fpRecipApprox(mant_b, scratch);      // op 1: ~2^-16
    uint64_t t = fpMul(mant_b, r, scratch);           // op 2
    r = fpIterStep(r, t, scratch);                    // op 3: ~2^-32
    t = fpMul(mant_b, r, scratch);                    // op 4
    r = fpIterStep(r, t, scratch);                    // op 5: ~2^-60

    // Final multiply: q = a * (1/m_b) * 2^-(E_b). Fold the exponent in
    // by unpacking the refined reciprocal and repacking through
    // roundPack, which handles overflow/underflow of the quotient.
    Operand oa = unpackOperand(a);
    normalizeOperand(oa);
    Operand orr = unpackOperand(r);
    normalizeOperand(orr);

    const bool sign = oa.sign != ob.sign;
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(oa.sig) * orr.sig;

    int32_t e = oa.exp + (orr.exp - kExpBias) - (ob.exp - kExpBias);
    unsigned shift = 49;
    if (prod >> 105) {
        shift = 50;
        ++e;
    }
    uint64_t sig = static_cast<uint64_t>(prod >> shift);
    if (static_cast<uint64_t>(prod) & lowMask(shift))
        sig |= 1;

    return roundPack(sign, e, sig, flags);
}

} // namespace mtfpu::softfp
