/**
 * @file
 * The conversion operations of the add unit (Figure 4): "float"
 * (two's-complement int64 -> double, RNE) and "truncate"
 * (double -> int64, round toward zero).
 */

#include "common/bitfield.hh"
#include "softfp/fp64.hh"
#include "softfp/unpack.hh"

namespace mtfpu::softfp
{

uint64_t
fpFloat(uint64_t a, Flags &flags)
{
    const int64_t value = static_cast<int64_t>(a);
    if (value == 0)
        return 0;

    const bool sign = value < 0;
    // Magnitude; INT64_MIN is handled correctly by unsigned negation.
    const uint64_t mag = sign ? 0 - static_cast<uint64_t>(value)
                              : static_cast<uint64_t>(value);

    const int msb = 63 - static_cast<int>(clz64(mag));
    const int32_t e = kExpBias + msb;

    // Bring the leading 1 to bit 55 of the working significand.
    uint64_t sig;
    if (msb <= 55)
        sig = mag << (55 - msb);
    else
        sig = shiftRightSticky(mag, static_cast<unsigned>(msb - 55));

    return roundPack(sign, e, sig, flags);
}

uint64_t
fpTruncate(uint64_t a, Flags &flags)
{
    // Saturation value for out-of-range and invalid conversions.
    constexpr uint64_t kIntMin = 1ULL << 63;
    constexpr uint64_t kIntMax = ~kIntMin;

    switch (classify(a)) {
      case FpClass::NaN:
        flags.invalid = true;
        return kIntMin;
      case FpClass::Inf:
        flags.invalid = true;
        return signOf(a) ? kIntMin : kIntMax;
      case FpClass::Zero:
        return 0;
      case FpClass::Subnormal:
        flags.inexact = true;
        return 0;
      case FpClass::Normal:
        break;
    }

    const Operand op = unpackOperand(a);
    const int32_t pow = op.exp - kExpBias; // value = sig/2^52 * 2^pow

    if (pow < 0) {
        flags.inexact = true;
        return 0;
    }
    if (pow > 62) {
        // Magnitude >= 2^63: only INT64_MIN itself is representable.
        if (op.sign && pow == 63 && op.sig == kHiddenBit)
            return kIntMin;
        flags.invalid = true;
        return op.sign ? kIntMin : kIntMax;
    }

    uint64_t mag;
    if (pow >= kFracBits) {
        mag = op.sig << (pow - kFracBits);
    } else {
        mag = op.sig >> (kFracBits - pow);
        if (op.sig & lowMask(static_cast<unsigned>(kFracBits - pow)))
            flags.inexact = true;
    }

    return op.sign ? 0 - mag : mag;
}

} // namespace mtfpu::softfp
