/**
 * @file
 * The multiply unit: IEEE-754 binary64 multiplication with
 * round-to-nearest-even. The hardware uses a "chunky binary tree"
 * multiplier array (paper §2.2.3); this model reproduces the
 * arithmetic contract.
 */

#include "common/bitfield.hh"
#include "softfp/fp64.hh"
#include "softfp/unpack.hh"

namespace mtfpu::softfp
{

uint64_t
fpMul(uint64_t a, uint64_t b, Flags &flags)
{
    if (isNaN(a) || isNaN(b))
        return propagateNaN(a, b, flags);

    const bool sign = signOf(a) != signOf(b);

    if (isInf(a) || isInf(b)) {
        if (isZero(a) || isZero(b)) {
            flags.invalid = true;
            return kQuietNaN;
        }
        return (sign ? kSignBit : 0) | kPlusInf;
    }

    if (isZero(a) || isZero(b))
        return sign ? kSignBit : 0;

    Operand oa = unpackOperand(a);
    Operand ob = unpackOperand(b);
    normalizeOperand(oa);
    normalizeOperand(ob);

    // 53 x 53 -> 106-bit product; the significand product m_a * m_b
    // lies in [1, 4) scaled by 2^104.
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(oa.sig) * ob.sig;

    int32_t e = oa.exp + ob.exp - kExpBias;
    unsigned shift = 49; // brings a [1,2) product's leading 1 to bit 55
    if (prod >> 105) {
        // Product in [2, 4): one extra right shift, one higher exponent.
        shift = 50;
        ++e;
    }

    uint64_t sig = static_cast<uint64_t>(prod >> shift);
    if (static_cast<uint64_t>(prod) & lowMask(shift))
        sig |= 1; // sticky

    return roundPack(sign, e, sig, flags);
}

} // namespace mtfpu::softfp
