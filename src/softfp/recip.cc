/**
 * @file
 * The reciprocal-approximation unit (Figure 4, unit 3): a 16-bit-
 * accurate seed for 1/x via linear interpolation (paper §2.2.3), plus
 * the iteration-step operation of the multiply unit used to refine it.
 */

#include "softfp/recip.hh"

#include <cmath>

#include "common/bitfield.hh"
#include "softfp/fp64.hh"
#include "softfp/unpack.hh"

namespace mtfpu::softfp
{

const std::array<RecipEntry, kRecipTableSize> &
recipTable()
{
    static const auto table = [] {
        std::array<RecipEntry, kRecipTableSize> t;
        for (unsigned i = 0; i < kRecipTableSize; ++i) {
            // Chord (secant) fit of 1/x across [x0, x1): exact at both
            // interval endpoints, maximum relative error f''*d^2/8
            // which is below 2^-16 for 256 intervals.
            const double x0 = 1.0 + static_cast<double>(i) /
                                        kRecipTableSize;
            const double x1 = 1.0 + static_cast<double>(i + 1) /
                                        kRecipTableSize;
            const double r0 = 1.0 / x0;
            const double r1 = 1.0 / x1;
            t[i] = {r0, (r1 - r0) * kRecipTableSize};
        }
        return t;
    }();
    return table;
}

double
recipMantissa(uint64_t frac52)
{
    // Index by the top 8 fraction bits; interpolate on the rest.
    const unsigned index =
        static_cast<unsigned>(frac52 >> (kFracBits - 8));
    const uint64_t rem = frac52 & lowMask(kFracBits - 8);
    const double t =
        static_cast<double>(rem) /
        static_cast<double>(1ULL << (kFracBits - 8));
    const RecipEntry &entry = recipTable()[index];
    return entry.base + entry.slope * (t / kRecipTableSize);
}

uint64_t
fpRecipApprox(uint64_t a, Flags &flags)
{
    switch (classify(a)) {
      case FpClass::NaN:
        return propagateNaN(a, a, flags);
      case FpClass::Inf:
        return signOf(a) ? kSignBit : 0;
      case FpClass::Zero:
        flags.divByZero = true;
        return (a & kSignBit) | kPlusInf;
      default:
        break;
    }

    Operand op = unpackOperand(a);
    normalizeOperand(op);

    // 1/(m * 2^E) = (1/m) * 2^-E with 1/m in (0.5, 1].
    const double rm = recipMantissa(op.sig & kFracMask);
    const int unbiased = op.exp - kExpBias;
    double seed = std::ldexp(rm, -unbiased);
    if (op.sign)
        seed = -seed;

    if (std::isinf(seed)) {
        flags.overflow = true;
        flags.inexact = true;
    } else if (seed == 0.0 || std::fpclassify(seed) == FP_SUBNORMAL) {
        flags.underflow = true;
        flags.inexact = true;
    } else if ((op.sig & kFracMask) != 0) {
        // The interpolated seed is an approximation; powers of two
        // (zero fraction) hit the table's exact left endpoint.
        flags.inexact = true;
    }
    return fromDouble(seed);
}

uint64_t
fpIterStep(uint64_t x, uint64_t t, Flags &flags)
{
    // One Newton-Raphson refinement: x * (2 - t), where t = b * x.
    // Modeled as a subtract feeding the multiplier array (two
    // roundings); the refined seed doubles its accurate bits per step.
    static const uint64_t two = fromDouble(2.0);
    const uint64_t correction = fpSub(two, t, flags);
    return fpMul(x, correction, flags);
}

} // namespace mtfpu::softfp
