#include "assembler/assembler.hh"

#include "assembler/parser.hh"
#include "common/log.hh"

namespace mtfpu::assembler
{

uint32_t
Program::labelAddr(const std::string &name) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        fatal(ErrCode::AssemblerError, "undefined label '" + name + "'");
    return it->second;
}

Program
assemble(const std::string &source)
{
    const ParseResult parsed = parse(tokenize(source));

    Program prog;
    prog.labels = parsed.labels;
    prog.code.reserve(parsed.stmts.size());

    for (size_t pc = 0; pc < parsed.stmts.size(); ++pc) {
        const Stmt &stmt = parsed.stmts[pc];
        isa::Instr instr = stmt.instr;
        if (stmt.ref == RefKind::Relative) {
            auto it = parsed.labels.find(stmt.label);
            if (it == parsed.labels.end())
                fatal(ErrCode::AssemblerError,
                      "line " + std::to_string(stmt.line) +
                          ": undefined label '" + stmt.label + "'");
            const int64_t disp =
                static_cast<int64_t>(it->second) -
                static_cast<int64_t>(pc);
            const int width = instr.major == isa::Major::Branch
                                  ? isa::kBranchDispBits
                                  : isa::kJumpDispBits;
            if (!isa::fitsSigned(disp, width))
                fatal(ErrCode::AssemblerError,
                      "line " + std::to_string(stmt.line) +
                          ": branch target out of range");
            instr.imm = static_cast<int32_t>(disp);
        }
        prog.code.push_back(instr);
    }

    return prog;
}

} // namespace mtfpu::assembler
