#include "assembler/parser.hh"

#include <map>

#include "common/log.hh"

namespace mtfpu::assembler
{

using isa::AluFunc;
using isa::BranchCond;
using isa::FpOp;
using isa::Instr;

namespace
{

const std::map<std::string, AluFunc> kAluOps = {
    {"add", AluFunc::Add}, {"sub", AluFunc::Sub}, {"and", AluFunc::And},
    {"or", AluFunc::Or}, {"xor", AluFunc::Xor}, {"sll", AluFunc::Sll},
    {"srl", AluFunc::Srl}, {"sra", AluFunc::Sra}, {"slt", AluFunc::Slt},
    {"sltu", AluFunc::Sltu}, {"mul", AluFunc::Mul},
};

const std::map<std::string, AluFunc> kAluImmOps = {
    {"addi", AluFunc::Add}, {"subi", AluFunc::Sub}, {"andi", AluFunc::And},
    {"ori", AluFunc::Or}, {"xori", AluFunc::Xor}, {"slli", AluFunc::Sll},
    {"srli", AluFunc::Srl}, {"srai", AluFunc::Sra}, {"slti", AluFunc::Slt},
    {"sltui", AluFunc::Sltu}, {"muli", AluFunc::Mul},
};

const std::map<std::string, BranchCond> kBranchOps = {
    {"beq", BranchCond::Eq}, {"bne", BranchCond::Ne},
    {"blt", BranchCond::Lt}, {"bge", BranchCond::Ge},
    {"bltu", BranchCond::Ltu}, {"bgeu", BranchCond::Geu},
};

const std::map<std::string, FpOp> kFpOps = {
    {"fadd", FpOp::Add}, {"fsub", FpOp::Sub}, {"ffloat", FpOp::Float},
    {"ftrunc", FpOp::Truncate}, {"fmul", FpOp::Mul},
    {"fimul", FpOp::IntMul}, {"fiter", FpOp::IterStep},
    {"frecip", FpOp::Recip},
};

/** Cursor over the token stream with error helpers. */
class Cursor
{
  public:
    explicit Cursor(const std::vector<Token> &toks) : toks_(toks) {}

    const Token &peek() const { return toks_[pos_]; }
    const Token &next() { return toks_[pos_++]; }
    bool atEnd() const { return peek().kind == TokKind::Eof; }

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal(ErrCode::AssemblerError,
              "line " + std::to_string(peek().line) + ": " + msg);
    }

    const Token &
    expect(TokKind kind, const char *what)
    {
        if (peek().kind != kind)
            error(std::string("expected ") + what);
        return next();
    }

    bool
    accept(TokKind kind)
    {
        if (peek().kind == kind) {
            next();
            return true;
        }
        return false;
    }

    unsigned
    intReg()
    {
        const Token &t = expect(TokKind::IntReg, "integer register");
        if (t.value >= isa::kNumIntRegs)
            error("integer register out of range");
        return static_cast<unsigned>(t.value);
    }

    unsigned
    fpReg()
    {
        const Token &t = expect(TokKind::FpReg, "FPU register");
        if (t.value >= isa::kNumFpuRegs)
            error("FPU register out of range");
        return static_cast<unsigned>(t.value);
    }

    int64_t
    number()
    {
        return expect(TokKind::Number, "number").value;
    }

    void comma() { expect(TokKind::Comma, "','"); }

  private:
    const std::vector<Token> &toks_;
    size_t pos_ = 0;
};

/** Parse "imm(rb)" addressing. */
void
parseAddress(Cursor &cur, int64_t &imm, unsigned &base)
{
    imm = cur.number();
    cur.expect(TokKind::LParen, "'('");
    base = cur.intReg();
    cur.expect(TokKind::RParen, "')'");
}

} // anonymous namespace

ParseResult
parse(const std::vector<Token> &tokens)
{
    ParseResult result;
    Cursor cur(tokens);

    auto emit = [&](Instr instr, int line, RefKind ref = RefKind::None,
                    std::string label = "") {
        result.stmts.push_back(
            Stmt{instr, ref, std::move(label), line});
    };

    while (!cur.atEnd()) {
        if (cur.accept(TokKind::Newline))
            continue;

        const Token &head = cur.expect(TokKind::Ident, "mnemonic or label");
        const int line = head.line;

        // Label definition?
        if (cur.peek().kind == TokKind::Colon) {
            cur.next();
            if (result.labels.count(head.text))
                fatal("line " + std::to_string(line) +
                      ": duplicate label '" + head.text + "'");
            result.labels[head.text] =
                static_cast<uint32_t>(result.stmts.size());
            continue; // instructions may follow on the same line
        }

        const std::string &m = head.text;

        if (auto it = kAluOps.find(m); it != kAluOps.end()) {
            unsigned rd = cur.intReg();
            cur.comma();
            unsigned rs1 = cur.intReg();
            cur.comma();
            unsigned rs2 = cur.intReg();
            emit(Instr::alu(it->second, rd, rs1, rs2), line);
        } else if (auto im = kAluImmOps.find(m); im != kAluImmOps.end()) {
            unsigned rd = cur.intReg();
            cur.comma();
            unsigned rs1 = cur.intReg();
            cur.comma();
            int64_t imm = cur.number();
            emit(Instr::aluImm(im->second, rd, rs1,
                               static_cast<int>(imm)), line);
        } else if (auto bp = kBranchOps.find(m); bp != kBranchOps.end()) {
            unsigned rs1 = cur.intReg();
            cur.comma();
            unsigned rs2 = cur.intReg();
            cur.comma();
            if (cur.peek().kind == TokKind::Ident) {
                std::string target = cur.next().text;
                emit(Instr::branch(bp->second, rs1, rs2, 0), line,
                     RefKind::Relative, target);
            } else {
                emit(Instr::branch(bp->second, rs1, rs2,
                                   static_cast<int>(cur.number())), line);
            }
        } else if (auto fp = kFpOps.find(m); fp != kFpOps.end()) {
            unsigned rr = cur.fpReg();
            cur.comma();
            unsigned ra = cur.fpReg();
            unsigned rb = 0;
            const bool unary =
                fp->second == FpOp::Float ||
                fp->second == FpOp::Truncate || fp->second == FpOp::Recip;
            unsigned vl = 1;
            bool sra = false, srb = false;
            if (!unary) {
                cur.comma();
                rb = cur.fpReg();
            }
            while (cur.accept(TokKind::Comma)) {
                const Token &opt = cur.expect(TokKind::Ident, "option");
                if (opt.text == "vl") {
                    cur.expect(TokKind::Equals, "'='");
                    int64_t v = cur.number();
                    if (v < 1 || v > isa::kMaxVectorLength)
                        cur.error("vl must be 1..16");
                    vl = static_cast<unsigned>(v);
                } else if (opt.text == "sra") {
                    sra = true;
                } else if (opt.text == "srb") {
                    srb = true;
                } else {
                    cur.error("unknown option '" + opt.text + "'");
                }
            }
            emit(Instr::fpAlu(fp->second, rr, ra, rb, vl, sra, srb), line);
        } else if (m == "ld" || m == "st") {
            unsigned r = cur.intReg();
            cur.comma();
            int64_t imm;
            unsigned base;
            parseAddress(cur, imm, base);
            emit(m == "ld"
                     ? Instr::ld(r, base, static_cast<int>(imm))
                     : Instr::st(r, base, static_cast<int>(imm)), line);
        } else if (m == "ldf" || m == "stf") {
            unsigned f = cur.fpReg();
            cur.comma();
            int64_t imm;
            unsigned base;
            parseAddress(cur, imm, base);
            emit(m == "ldf"
                     ? Instr::ldf(f, base, static_cast<int>(imm))
                     : Instr::stf(f, base, static_cast<int>(imm)), line);
        } else if (m == "j") {
            if (cur.peek().kind == TokKind::Ident) {
                emit(Instr::jump(0), line, RefKind::Relative,
                     cur.next().text);
            } else {
                emit(Instr::jump(static_cast<int>(cur.number())), line);
            }
        } else if (m == "jal") {
            unsigned rd = cur.intReg();
            cur.comma();
            if (cur.peek().kind == TokKind::Ident) {
                emit(Instr::jal(rd, 0), line, RefKind::Relative,
                     cur.next().text);
            } else {
                emit(Instr::jal(rd, static_cast<int>(cur.number())), line);
            }
        } else if (m == "jr") {
            emit(Instr::jr(cur.intReg()), line);
        } else if (m == "jalr") {
            unsigned rd = cur.intReg();
            cur.comma();
            emit(Instr::jalr(rd, cur.intReg()), line);
        } else if (m == "lui") {
            unsigned rd = cur.intReg();
            cur.comma();
            emit(Instr::lui(rd, static_cast<int>(cur.number())), line);
        } else if (m == "li") {
            unsigned rd = cur.intReg();
            cur.comma();
            int64_t v = cur.number();
            if (isa::fitsSigned(v, isa::kAluImmBits)) {
                emit(Instr::aluImm(AluFunc::Add, rd, 0,
                                   static_cast<int>(v)), line);
            } else if (v >= 0 &&
                       v < (1LL << (isa::kLuiImmBits + isa::kLuiShift))) {
                emit(Instr::lui(rd,
                                static_cast<int>(v >> isa::kLuiShift)),
                     line);
                const int low = static_cast<int>(
                    v & ((1 << isa::kLuiShift) - 1));
                if (low != 0) {
                    emit(Instr::aluImm(AluFunc::Or, rd, rd, low), line);
                }
            } else {
                cur.error("li constant out of range");
            }
        } else if (m == "mvfc") {
            unsigned rd = cur.intReg();
            cur.comma();
            emit(Instr::mvfc(rd, cur.fpReg()), line);
        } else if (m == "nop") {
            emit(Instr::nop(), line);
        } else if (m == "halt") {
            emit(Instr::halt(), line);
        } else {
            cur.error("unknown mnemonic '" + m + "'");
        }

        if (!cur.accept(TokKind::Newline) && !cur.atEnd())
            cur.error("trailing tokens after instruction");
    }

    return result;
}

} // namespace mtfpu::assembler
