/**
 * @file
 * Tokenizer for the mtfpu assembly language.
 */

#ifndef MTFPU_ASSEMBLER_LEXER_HH
#define MTFPU_ASSEMBLER_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mtfpu::assembler
{

/** Token kinds produced by the lexer. */
enum class TokKind
{
    Ident,   // mnemonic or label name
    IntReg,  // r0..r31
    FpReg,   // f0..f51
    Number,  // decimal or 0x hex, optional leading '-'
    Comma,
    Colon,
    LParen,
    RParen,
    Equals,
    Newline,
    Eof,
};

/** One token with its source position. */
struct Token
{
    TokKind kind;
    std::string text; // identifier text
    int64_t value = 0; // number value or register index
    int line = 0;
};

/**
 * Tokenize a full source string. Comments run from ';' or '#' to end
 * of line. Raises fatal() with a line number on bad characters.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace mtfpu::assembler

#endif // MTFPU_ASSEMBLER_LEXER_HH
