/**
 * @file
 * Statement parser for the assembler: turns a token stream into
 * proto-instructions with unresolved label references.
 */

#ifndef MTFPU_ASSEMBLER_PARSER_HH
#define MTFPU_ASSEMBLER_PARSER_HH

#include <map>
#include <string>
#include <vector>

#include "assembler/lexer.hh"
#include "isa/cpu_instr.hh"

namespace mtfpu::assembler
{

/** How a statement's immediate refers to a label (if at all). */
enum class RefKind { None, Relative };

/** One parsed instruction, possibly with an unresolved label. */
struct Stmt
{
    isa::Instr instr;
    RefKind ref = RefKind::None;
    std::string label; // target label when ref != None
    int line = 0;
};

/** Result of parsing: statements plus label -> statement-index map. */
struct ParseResult
{
    std::vector<Stmt> stmts;
    std::map<std::string, uint32_t> labels;
};

/** Parse a token stream; fatal() with a line number on errors. */
ParseResult parse(const std::vector<Token> &tokens);

} // namespace mtfpu::assembler

#endif // MTFPU_ASSEMBLER_PARSER_HH
