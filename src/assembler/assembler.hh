/**
 * @file
 * Two-pass assembler producing a program image for the simulator.
 *
 * Syntax overview (one instruction per line, ';' or '#' comments):
 *
 *     start:  li    r1, 100
 *             ldf   f0, 0(r2)
 *             fmul  f16, f0, f4, vl=4, sra, srb
 *             addi  r2, r2, 8
 *             bne   r1, r0, start
 *             nop                      ; branch delay slot
 *             halt
 *
 * FPU ALU instructions accept an optional vl=N (1..16) and the sra/srb
 * stride flags of Figure 3. `li` is a pseudo-instruction that expands
 * to addi or lui+ori depending on the constant.
 */

#ifndef MTFPU_ASSEMBLER_ASSEMBLER_HH
#define MTFPU_ASSEMBLER_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/cpu_instr.hh"

namespace mtfpu::assembler
{

/** An assembled program: decoded instructions plus the label map. */
struct Program
{
    std::vector<isa::Instr> code;
    std::map<std::string, uint32_t> labels;

    /** Address of a label; fatal() if undefined. */
    uint32_t labelAddr(const std::string &name) const;
};

/** Assemble source text; fatal() with a line number on errors. */
Program assemble(const std::string &source);

} // namespace mtfpu::assembler

#endif // MTFPU_ASSEMBLER_ASSEMBLER_HH
