#include "assembler/lexer.hh"

#include <cctype>
#include <cstdlib>

#include "common/log.hh"

namespace mtfpu::assembler
{

namespace
{

[[noreturn]] void
lexError(int line, const std::string &msg)
{
    fatal(ErrCode::AssemblerError,
          "line " + std::to_string(line) + ": " + msg);
}

} // anonymous namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> toks;
    int line = 1;
    size_t i = 0;
    const size_t n = src.size();

    auto push = [&](TokKind k, std::string text = "", int64_t value = 0) {
        toks.push_back(Token{k, std::move(text), value, line});
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            // Collapse consecutive newlines.
            if (!toks.empty() && toks.back().kind != TokKind::Newline)
                push(TokKind::Newline);
            ++line;
            ++i;
        } else if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
        } else if (c == ';' || c == '#') {
            while (i < n && src[i] != '\n')
                ++i;
        } else if (c == ',') {
            push(TokKind::Comma);
            ++i;
        } else if (c == ':') {
            push(TokKind::Colon);
            ++i;
        } else if (c == '(') {
            push(TokKind::LParen);
            ++i;
        } else if (c == ')') {
            push(TokKind::RParen);
            ++i;
        } else if (c == '=') {
            push(TokKind::Equals);
            ++i;
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '-' &&
                    i + 1 < n &&
                    std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i + (c == '-' ? 1 : 0);
            int base = 10;
            if (j + 1 < n && src[j] == '0' &&
                (src[j + 1] == 'x' || src[j + 1] == 'X')) {
                base = 16;
                j += 2;
            }
            size_t start = j;
            while (j < n &&
                   std::isalnum(static_cast<unsigned char>(src[j])))
                ++j;
            const std::string digits = src.substr(start, j - start);
            if (digits.empty())
                lexError(line, "malformed number");
            char *end = nullptr;
            int64_t v = std::strtoll(digits.c_str(), &end, base);
            if (end == nullptr || *end != '\0')
                lexError(line, "malformed number '" + digits + "'");
            if (c == '-')
                v = -v;
            push(TokKind::Number, digits, v);
            i = j;
        } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                   c == '_' || c == '.') {
            size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_' || src[j] == '.'))
                ++j;
            std::string word = src.substr(i, j - i);
            i = j;

            // Register names: r<n> and f<n>.
            auto is_reg = [&](char prefix) {
                if (word.size() < 2 || word[0] != prefix)
                    return false;
                for (size_t k = 1; k < word.size(); ++k) {
                    if (!std::isdigit(static_cast<unsigned char>(word[k])))
                        return false;
                }
                return true;
            };
            if (is_reg('r')) {
                push(TokKind::IntReg, word,
                     std::strtoll(word.c_str() + 1, nullptr, 10));
            } else if (is_reg('f')) {
                push(TokKind::FpReg, word,
                     std::strtoll(word.c_str() + 1, nullptr, 10));
            } else {
                push(TokKind::Ident, std::move(word));
            }
        } else {
            lexError(line, std::string("unexpected character '") + c + "'");
        }
    }

    if (!toks.empty() && toks.back().kind != TokKind::Newline)
        push(TokKind::Newline);
    push(TokKind::Eof);
    return toks;
}

} // namespace mtfpu::assembler
