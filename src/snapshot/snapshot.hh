/**
 * @file
 * Versioned machine snapshots (DESIGN.md §9). A snapshot captures a
 * simulation completely enough that restoring it into a fresh engine
 * and continuing produces bit-identical results to the uninterrupted
 * run: the program image, the full configuration, and the serialized
 * per-run state of every component — architectural (registers, PC,
 * PSW, memory) and microarchitectural (scoreboard, in-flight pipeline
 * entries, cache tags, stall bookkeeping, statistics counters).
 *
 * The on-disk format is little-endian binary: a "MTSN" magic, the
 * format version, the snapshot kind, the payload sections, and a
 * trailing CRC-32 over everything before it. Readers reject unknown
 * magic/version/kind, CRC mismatches, and truncation with structured
 * SimError(ErrCode::BadSnapshot) — a half-written checkpoint from a
 * killed process must fail recoverably, never load as garbage state.
 *
 * Versioning rule: any change to the byte layout of the payload or of
 * a component's saveState() stream bumps kFormatVersion. Readers do
 * not migrate old versions (snapshots are working files, not archives)
 * but must detect them; the committed golden-snapshot test pins the
 * current layout.
 *
 * Two kinds share the container:
 *  - Machine: full cycle-model state, pairable mid-run with a
 *    LockstepChecker's own saveState() (campaign snapshot-forking);
 *  - Interpreter: the untimed functional subset.
 */

#ifndef MTFPU_SNAPSHOT_SNAPSHOT_HH
#define MTFPU_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "common/bytestream.hh"
#include "machine/config.hh"

namespace mtfpu::machine
{
class Machine;
class Interpreter;
} // namespace mtfpu::machine

namespace mtfpu::snapshot
{

/** Current on-disk format version (see the versioning rule above). */
constexpr uint32_t kFormatVersion = 1;

/** Which engine a snapshot captures. */
enum class SnapshotKind : uint8_t
{
    Machine = 0,
    Interpreter = 1,
};

/** An in-memory snapshot: program + config + component state bytes. */
struct MachineSnapshot
{
    SnapshotKind kind = SnapshotKind::Machine;

    /** Full configuration (Machine kind; defaulted for Interpreter
     *  except memory.memBytes, which sizes the restored memory). */
    machine::MachineConfig config;

    /** The program image. The label map is not preserved — snapshots
     *  restore mid-run state, past any label-based setup. */
    assembler::Program program;

    /** The engine's saveState() stream. */
    std::vector<uint8_t> state;
};

/** Capture the complete state of @p m. */
MachineSnapshot capture(const machine::Machine &m);

/** Capture the functional state of @p interp. */
MachineSnapshot capture(const machine::Interpreter &interp);

/**
 * Restore @p snap into @p m: reload the program (resetting the
 * machine) and overwrite all per-run state. The machine must have
 * been constructed with the snapshot's configuration — a mismatch is
 * ErrCode::BadSnapshot, since timing state is only meaningful under
 * the configuration that produced it.
 */
void restore(machine::Machine &m, const MachineSnapshot &snap);

/** Restore an Interpreter snapshot (memory sizes must match). */
void restore(machine::Interpreter &interp, const MachineSnapshot &snap);

/** Encode to the versioned, CRC-protected binary format. */
std::vector<uint8_t> serialize(const MachineSnapshot &snap);

/**
 * Decode a serialized snapshot; throws SimError(ErrCode::BadSnapshot)
 * on bad magic, unknown version/kind, truncation, or CRC mismatch.
 */
MachineSnapshot deserialize(const uint8_t *data, size_t size);
MachineSnapshot deserialize(const std::vector<uint8_t> &data);

/**
 * Write @p snap to @p path atomically (temp file + rename), so a
 * checkpoint file is always either the old complete snapshot or the
 * new one — never a torn write.
 */
void writeFile(const std::string &path, const MachineSnapshot &snap);

/** Read and decode a snapshot file; BadSnapshot on any defect. */
MachineSnapshot readFile(const std::string &path);

} // namespace mtfpu::snapshot

#endif // MTFPU_SNAPSHOT_SNAPSHOT_HH
