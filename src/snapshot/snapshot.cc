#include "snapshot/snapshot.hh"

#include <cstdio>

#include "common/log.hh"
#include "machine/interpreter.hh"
#include "machine/machine.hh"

namespace mtfpu::snapshot
{

namespace
{

constexpr char kMagic[4] = {'M', 'T', 'S', 'N'};

void
saveCacheConfig(ByteWriter &out, const memory::CacheConfig &c)
{
    out.u64(c.sizeBytes);
    out.u64(c.lineBytes);
    out.u32(c.missPenalty);
    out.b(c.writeAllocate);
}

memory::CacheConfig
restoreCacheConfig(ByteReader &in)
{
    memory::CacheConfig c;
    c.sizeBytes = in.u64();
    c.lineBytes = in.u64();
    c.missPenalty = in.u32();
    c.writeAllocate = in.b();
    return c;
}

void
saveConfig(ByteWriter &out, const machine::MachineConfig &c)
{
    out.u32(c.fpuLatency);
    out.f64(c.cycleNs);
    out.u32(c.storeCycles);
    out.b(c.overlapWithVector);
    out.u8(static_cast<uint8_t>(c.hazardPolicy));
    out.u8(static_cast<uint8_t>(c.fpBackend));
    saveCacheConfig(out, c.memory.dataCache);
    saveCacheConfig(out, c.memory.instrBuffer);
    saveCacheConfig(out, c.memory.instrCache);
    out.u64(c.memory.memBytes);
    out.b(c.memory.modelCaches);
    out.u64(c.maxCycles);
    out.u64(c.watchdogMs);
}

machine::MachineConfig
restoreConfig(ByteReader &in)
{
    machine::MachineConfig c;
    c.fpuLatency = in.u32();
    c.cycleNs = in.f64();
    c.storeCycles = in.u32();
    c.overlapWithVector = in.b();
    c.hazardPolicy = static_cast<machine::HazardPolicy>(in.u8());
    c.fpBackend = static_cast<softfp::Backend>(in.u8());
    c.memory.dataCache = restoreCacheConfig(in);
    c.memory.instrBuffer = restoreCacheConfig(in);
    c.memory.instrCache = restoreCacheConfig(in);
    c.memory.memBytes = in.u64();
    c.memory.modelCaches = in.b();
    c.maxCycles = in.u64();
    c.watchdogMs = in.u64();
    return c;
}

void
saveProgram(ByteWriter &out, const assembler::Program &program)
{
    out.u32(static_cast<uint32_t>(program.code.size()));
    for (const isa::Instr &in : program.code)
        out.u32(in.encode());
}

assembler::Program
restoreProgram(ByteReader &in)
{
    assembler::Program program;
    const uint32_t n = in.u32();
    program.code.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        program.code.push_back(isa::Instr::decode(in.u32()));
    return program;
}

} // anonymous namespace

MachineSnapshot
capture(const machine::Machine &m)
{
    MachineSnapshot snap;
    snap.kind = SnapshotKind::Machine;
    snap.config = m.config();
    snap.program = m.program();
    ByteWriter state;
    m.saveState(state);
    snap.state = state.take();
    return snap;
}

MachineSnapshot
capture(const machine::Interpreter &interp)
{
    MachineSnapshot snap;
    snap.kind = SnapshotKind::Interpreter;
    snap.config.memory.memBytes = interp.mem().size();
    snap.program = interp.program();
    ByteWriter state;
    interp.saveState(state);
    snap.state = state.take();
    return snap;
}

void
restore(machine::Machine &m, const MachineSnapshot &snap)
{
    if (snap.kind != SnapshotKind::Machine)
        fatal(ErrCode::BadSnapshot,
              "snapshot: not a Machine snapshot");
    if (!(m.config() == snap.config))
        fatal(ErrCode::BadSnapshot,
              "snapshot: machine configuration does not match the "
              "snapshot's (timing state is only meaningful under the "
              "configuration that produced it)");
    m.loadProgram(snap.program);
    ByteReader in(snap.state);
    m.restoreState(in);
    if (!in.atEnd())
        fatal(ErrCode::BadSnapshot,
              "snapshot: trailing bytes after machine state");
}

void
restore(machine::Interpreter &interp, const MachineSnapshot &snap)
{
    if (snap.kind != SnapshotKind::Interpreter)
        fatal(ErrCode::BadSnapshot,
              "snapshot: not an Interpreter snapshot");
    interp.loadProgram(snap.program);
    ByteReader in(snap.state);
    interp.restoreState(in);
    if (!in.atEnd())
        fatal(ErrCode::BadSnapshot,
              "snapshot: trailing bytes after interpreter state");
}

std::vector<uint8_t>
serialize(const MachineSnapshot &snap)
{
    ByteWriter out;
    for (const char c : kMagic)
        out.u8(static_cast<uint8_t>(c));
    out.u32(kFormatVersion);
    out.u8(static_cast<uint8_t>(snap.kind));
    saveConfig(out, snap.config);
    saveProgram(out, snap.program);
    out.bytes(snap.state.data(), snap.state.size());
    out.u32(crc32(out.data().data(), out.size()));
    return out.take();
}

MachineSnapshot
deserialize(const uint8_t *data, size_t size)
{
    // The trailing CRC-32 covers every byte before it; verify before
    // interpreting anything (a torn checkpoint must never half-load).
    if (size < sizeof(kMagic) + sizeof(uint32_t))
        fatal(ErrCode::BadSnapshot, "snapshot: file too short");
    ByteReader crcReader(data + size - sizeof(uint32_t),
                         sizeof(uint32_t));
    const uint32_t stored = crcReader.u32();
    const uint32_t computed = crc32(data, size - sizeof(uint32_t));
    if (stored != computed)
        fatal(ErrCode::BadSnapshot,
              "snapshot: CRC mismatch (stored " + std::to_string(stored) +
                  ", computed " + std::to_string(computed) +
                  ") - truncated or corrupt file");

    ByteReader in(data, size - sizeof(uint32_t));
    for (const char c : kMagic) {
        if (in.u8() != static_cast<uint8_t>(c))
            fatal(ErrCode::BadSnapshot, "snapshot: bad magic");
    }
    const uint32_t version = in.u32();
    if (version != kFormatVersion)
        fatal(ErrCode::BadSnapshot,
              "snapshot: format version " + std::to_string(version) +
                  " (this build reads version " +
                  std::to_string(kFormatVersion) + ")");
    MachineSnapshot snap;
    const uint8_t kind = in.u8();
    if (kind > static_cast<uint8_t>(SnapshotKind::Interpreter))
        fatal(ErrCode::BadSnapshot,
              "snapshot: unknown kind " + std::to_string(kind));
    snap.kind = static_cast<SnapshotKind>(kind);
    snap.config = restoreConfig(in);
    snap.program = restoreProgram(in);
    snap.state = in.bytes();
    if (!in.atEnd())
        fatal(ErrCode::BadSnapshot,
              "snapshot: trailing bytes before the CRC");
    return snap;
}

MachineSnapshot
deserialize(const std::vector<uint8_t> &data)
{
    return deserialize(data.data(), data.size());
}

void
writeFile(const std::string &path, const MachineSnapshot &snap)
{
    const std::vector<uint8_t> bytes = serialize(snap);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal(ErrCode::BadSnapshot,
              "snapshot: cannot open " + tmp + " for writing");
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        fatal(ErrCode::BadSnapshot, "snapshot: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal(ErrCode::BadSnapshot,
              "snapshot: cannot rename " + tmp + " to " + path);
    }
}

MachineSnapshot
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal(ErrCode::BadSnapshot,
              "snapshot: cannot open " + path + " for reading");
    std::vector<uint8_t> bytes;
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return deserialize(bytes);
}

} // namespace mtfpu::snapshot
