#include "faults/fault_plan.hh"

#include <algorithm>
#include <cstdio>
#include <random>
#include <sstream>

#include "common/log.hh"

namespace mtfpu::faults
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::FpuReg: return "fpu-reg";
      case FaultSite::CpuReg: return "cpu-reg";
      case FaultSite::CacheLine: return "cache-line";
      case FaultSite::MemWord: return "mem-word";
      case FaultSite::SoftfpResult: return "softfp-result";
      case FaultSite::SoftfpFlags: return "softfp-flags";
    }
    return "unknown";
}

FaultSite
faultSiteFromName(const std::string &name)
{
    for (unsigned s = 0; s < kNumFaultSites; ++s) {
        const FaultSite site = static_cast<FaultSite>(s);
        if (name == faultSiteName(site))
            return site;
    }
    fatal(ErrCode::BadOperand, "unknown fault site '" + name + "'");
}

std::string
Fault::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%llu %s %llu 0x%llx",
                  static_cast<unsigned long long>(cycle),
                  faultSiteName(site),
                  static_cast<unsigned long long>(index),
                  static_cast<unsigned long long>(mask));
    return buf;
}

FaultPlan::FaultPlan(std::vector<Fault> faults) : faults_(std::move(faults))
{
    std::stable_sort(faults_.begin(), faults_.end(),
                     [](const Fault &a, const Fault &b) {
                         return a.cycle < b.cycle;
                     });
}

void
FaultPlan::add(const Fault &fault)
{
    auto pos = std::upper_bound(faults_.begin(), faults_.end(), fault,
                                [](const Fault &a, const Fault &b) {
                                    return a.cycle < b.cycle;
                                });
    faults_.insert(pos, fault);
}

FaultPlan
FaultPlan::randomSingle(uint64_t seed, uint64_t max_cycle)
{
    std::mt19937_64 rng(seed);
    Fault fault;
    fault.cycle = std::uniform_int_distribution<uint64_t>(0, max_cycle)(rng);
    fault.site = static_cast<FaultSite>(
        std::uniform_int_distribution<unsigned>(0, kNumFaultSites - 1)(rng));
    fault.index = rng();
    switch (fault.site) {
      case FaultSite::FpuReg:
      case FaultSite::CpuReg:
      case FaultSite::MemWord:
      case FaultSite::SoftfpResult:
        // Single-event upset: one flipped bit.
        fault.mask = 1ull
                     << std::uniform_int_distribution<unsigned>(0, 63)(rng);
        break;
      case FaultSite::SoftfpFlags:
        fault.mask = 1ull
                     << std::uniform_int_distribution<unsigned>(0, 4)(rng);
        break;
      case FaultSite::CacheLine:
        // Either a valid-bit flip (bit 0) or a single tag bit.
        if (std::uniform_int_distribution<unsigned>(0, 1)(rng)) {
            fault.mask = 1;
        } else {
            fault.mask =
                2ull << std::uniform_int_distribution<unsigned>(0, 20)(rng);
        }
        break;
    }
    return FaultPlan({fault});
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string cycle_s, site_s, index_s, mask_s;
        if (!(fields >> cycle_s))
            continue; // blank / comment-only line
        if (!(fields >> site_s >> index_s >> mask_s)) {
            fatal(ErrCode::BadOperand,
                  "fault plan line " + std::to_string(lineno) +
                      ": expected '<cycle> <site> <index> <mask>'");
        }
        std::string extra;
        if (fields >> extra) {
            fatal(ErrCode::BadOperand,
                  "fault plan line " + std::to_string(lineno) +
                      ": trailing junk '" + extra + "'");
        }
        Fault fault;
        try {
            fault.cycle = std::stoull(cycle_s);
            fault.index = std::stoull(index_s);
            fault.mask = std::stoull(mask_s, nullptr, 16);
        } catch (const std::exception &) {
            fatal(ErrCode::BadOperand,
                  "fault plan line " + std::to_string(lineno) +
                      ": bad number");
        }
        fault.site = faultSiteFromName(site_s);
        plan.add(fault);
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::string out;
    for (const Fault &fault : faults_) {
        out += fault.describe();
        out += '\n';
    }
    return out;
}

std::string
FaultPlan::to_json() const
{
    std::string json = "[";
    for (size_t i = 0; i < faults_.size(); ++i) {
        const Fault &f = faults_[i];
        if (i)
            json += ",";
        json += "{\"cycle\":" + std::to_string(f.cycle) + ",\"site\":\"" +
                faultSiteName(f.site) +
                "\",\"index\":" + std::to_string(f.index) + ",\"mask\":" +
                std::to_string(f.mask) + "}";
    }
    json += "]";
    return json;
}

} // namespace mtfpu::faults
