#include "faults/campaign.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "faults/fault_injector.hh"
#include "kernels/runner.hh"
#include "machine/lockstep.hh"
#include "snapshot/snapshot.hh"

namespace mtfpu::faults
{

namespace
{

/**
 * The hook a plan attaches: the injector itself plus (optionally) a
 * lockstep checker whose lifetime it carries — the driver keeps the
 * hook alive for exactly the duration of the job, which is also the
 * window the checker's Machine reference is valid for.
 */
struct PlanHook : machine::MachineHook
{
    explicit PlanHook(FaultPlan plan) : injector(std::move(plan)) {}

    void
    onCycleStart(uint64_t cycle, machine::Machine &m) override
    {
        injector.onCycleStart(cycle, m);
    }

    FaultInjector injector;
    std::unique_ptr<machine::LockstepChecker> checker;
};

/** Bit-exact double comparison (NaN-safe, unlike operator==). */
bool
bitEqual(double a, double b)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

/** Deterministic per-trial seed from (base, kernel, trial). */
uint64_t
trialSeed(uint64_t base, size_t kernel, unsigned trial)
{
    uint64_t s = base;
    s ^= (kernel + 1) * 0x9e3779b97f4a7c15ull;
    s ^= (static_cast<uint64_t>(trial) + 1) * 0xc2b2ae3d27d4eb4full;
    return s;
}

/** Journal/resume identity of a trial. */
std::string
trialKey(const std::string &kernel, uint64_t seed)
{
    return kernel + "\x1f" + std::to_string(seed);
}

/** Inverse of faultOutcomeName(); throws SimError on unknown names. */
FaultOutcome
faultOutcomeFromName(const std::string &name)
{
    for (FaultOutcome o :
         {FaultOutcome::DetectedHardware, FaultOutcome::DetectedLockstep,
          FaultOutcome::Masked, FaultOutcome::Sdc}) {
        if (name == faultOutcomeName(o))
            return o;
    }
    fatal(ErrCode::BadOperand, "unknown fault outcome: " + name);
}

/**
 * Load the completed trials recorded in a journal. Each line is one
 * JSON object written by FaultTrial::to_json(); a line that fails to
 * parse — the torn final line of a killed campaign — is skipped.
 */
std::unordered_map<std::string, FaultTrial>
readJournal(const std::string &path)
{
    std::unordered_map<std::string, FaultTrial> done;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return done;
    std::string text;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    size_t start = 0;
    unsigned torn = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        try {
            const json::Value v = json::parse(line);
            FaultTrial trial;
            trial.kernel = v.at("kernel").asString();
            trial.seed = v.at("seed").asUint();
            trial.outcome = faultOutcomeFromName(v.at("outcome").asString());
            trial.errorCode = v.at("error_code").asString();
            trial.cycles = v.at("cycles").asUint();
            done[trialKey(trial.kernel, trial.seed)] = std::move(trial);
        } catch (const SimError &) {
            ++torn;
        }
    }
    if (torn)
        warn("journal " + path + ": skipped " + std::to_string(torn) +
             " unparseable line(s) (torn write from a killed run)");
    return done;
}

/** Classify one finished trial against its golden checksum. */
void
classifyTrial(FaultTrial &trial, const machine::SimJobResult &r,
              double sum, double golden_sum)
{
    trial.cycles = r.stats.cycles;
    trial.errorCode = r.errorCode;
    if (r.ok) {
        trial.outcome = bitEqual(sum, golden_sum) ? FaultOutcome::Masked
                                                  : FaultOutcome::Sdc;
    } else if (r.errorCode == errCodeName(ErrCode::LockstepDivergence)) {
        trial.outcome = FaultOutcome::DetectedLockstep;
    } else {
        trial.outcome = FaultOutcome::DetectedHardware;
    }
}

/** A paused reference run at one injection cycle: the machine state
 *  plus the lockstep checker's own stream (empty if lockstep is off). */
struct ForkPoint
{
    snapshot::MachineSnapshot machine;
    std::vector<uint8_t> checker;
};

/**
 * Run one reference machine to each distinct injection cycle of a
 * kernel's trial sweep and capture a fork point at each pause. The
 * reference runs under the *trial* configuration (snapshot restore
 * requires config equality) with the same lockstep shadow the trials
 * use, so a restored trial is indistinguishable from one that
 * simulated the prefix itself.
 */
std::shared_ptr<std::map<uint64_t, ForkPoint>>
captureForkPoints(const kernels::Kernel &kernel,
                  const machine::MachineConfig &trial_cfg,
                  const std::vector<std::pair<uint64_t, uint64_t>> &image,
                  const std::set<uint64_t> &cycles, bool lockstep)
{
    auto forks = std::make_shared<std::map<uint64_t, ForkPoint>>();
    machine::Machine ref(trial_cfg);
    ref.loadProgram(kernel.program);
    for (const auto &[addr, word] : image)
        ref.mem().write64(addr, word);
    std::unique_ptr<machine::LockstepChecker> checker;
    if (lockstep) {
        checker = std::make_unique<machine::LockstepChecker>(ref);
        ref.addObserver(checker.get());
    }
    for (const uint64_t c : cycles) { // std::set iterates ascending
        const machine::RunStats st = ref.runUntil(c);
        if (st.status != machine::RunStatus::Paused) {
            fatal("fault campaign: reference run of " + kernel.name +
                  " ended (" + machine::runStatusName(st.status) +
                  ") before injection cycle " + std::to_string(c));
        }
        ForkPoint fp;
        fp.machine = snapshot::capture(ref);
        if (checker) {
            ByteWriter out;
            checker->saveState(out);
            fp.checker = out.take();
        }
        (*forks)[c] = std::move(fp);
    }
    return forks;
}

} // anonymous namespace

void
attachPlan(machine::SimJob &job, FaultPlan plan, bool lockstep)
{
    job.faultExpected = !plan.empty();
    job.hookFactory = [plan = std::move(plan),
                       lockstep](machine::Machine &m) {
        auto hook = std::make_shared<PlanHook>(plan);
        if (lockstep) {
            hook->checker = std::make_unique<machine::LockstepChecker>(m);
            m.addObserver(hook->checker.get());
        }
        return std::shared_ptr<machine::MachineHook>(std::move(hook));
    };
}

uint64_t
campaignTrialSeed(uint64_t base, size_t kernel_index, unsigned trial)
{
    return trialSeed(base, kernel_index, trial);
}

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::DetectedHardware: return "detected-hardware";
      case FaultOutcome::DetectedLockstep: return "detected-lockstep";
      case FaultOutcome::Masked: return "masked";
      case FaultOutcome::Sdc: return "sdc";
    }
    return "unknown";
}

std::string
FaultTrial::to_json() const
{
    return "{\"kernel\":\"" + jsonEscape(kernel) +
           "\",\"seed\":" + std::to_string(seed) +
           ",\"faults\":" + plan.to_json() + ",\"outcome\":\"" +
           faultOutcomeName(outcome) + "\",\"error_code\":\"" +
           jsonEscape(errorCode) +
           "\",\"cycles\":" + std::to_string(cycles) + "}";
}

unsigned
CampaignResult::count(FaultOutcome outcome) const
{
    unsigned n = 0;
    for (const FaultTrial &trial : trials)
        n += trial.outcome == outcome;
    return n;
}

std::string
CampaignResult::table() const
{
    TextTable table({"kernel", "trials", "hw-detect", "lockstep", "masked",
                     "sdc", "coverage%"});
    auto addRow = [&](const std::string &name) {
        unsigned n = 0, hw = 0, ls = 0, masked = 0, sdc = 0;
        for (const FaultTrial &t : trials) {
            if (!name.empty() && t.kernel != name)
                continue;
            ++n;
            switch (t.outcome) {
              case FaultOutcome::DetectedHardware: ++hw; break;
              case FaultOutcome::DetectedLockstep: ++ls; break;
              case FaultOutcome::Masked: ++masked; break;
              case FaultOutcome::Sdc: ++sdc; break;
            }
        }
        // Coverage = detected / not-masked (masked flips are benign).
        const unsigned exposed = hw + ls + sdc;
        const double coverage =
            exposed ? 100.0 * (hw + ls) / exposed : 100.0;
        table.addRow({name.empty() ? "TOTAL" : name, std::to_string(n),
                      std::to_string(hw), std::to_string(ls),
                      std::to_string(masked), std::to_string(sdc),
                      TextTable::num(coverage, 1)});
    };
    for (const std::string &name : kernels)
        addRow(name);
    table.addSeparator();
    addRow("");
    return table.render();
}

std::string
CampaignResult::to_json() const
{
    std::string json = "{\n  \"kernels\": [";
    for (size_t i = 0; i < kernels.size(); ++i) {
        if (i)
            json += ",";
        json += "{\"name\":\"" + jsonEscape(kernels[i]) +
                "\",\"golden_cycles\":" + std::to_string(goldenCycles[i]) +
                "}";
    }
    json += "],\n  \"summary\": {";
    bool first = true;
    for (FaultOutcome o :
         {FaultOutcome::DetectedHardware, FaultOutcome::DetectedLockstep,
          FaultOutcome::Masked, FaultOutcome::Sdc}) {
        if (!first)
            json += ",";
        first = false;
        json += std::string("\"") + faultOutcomeName(o) +
                "\":" + std::to_string(count(o));
    }
    json += "},\n  \"trials\": [\n";
    for (size_t i = 0; i < trials.size(); ++i) {
        json += "    " + trials[i].to_json();
        if (i + 1 < trials.size())
            json += ",";
        json += "\n";
    }
    json += "  ]\n}\n";
    return json;
}

CampaignResult
runCampaign(const std::vector<kernels::Kernel> &kernel_list,
            const CampaignConfig &config)
{
    CampaignResult result;
    machine::SimDriver driver(config.threads);

    // Phase 1: one golden run per kernel pins the fault-free checksum
    // and cycle count (the latter bounds trial fault cycles and sizes
    // the runaway guard).
    const size_t nk = kernel_list.size();
    std::vector<double> goldenSums(nk, 0.0);
    {
        std::vector<machine::SimJob> golden(nk);
        for (size_t k = 0; k < nk; ++k) {
            const kernels::Kernel &kernel = kernel_list[k];
            golden[k].name = kernel.name + "-golden";
            golden[k].program = kernel.program;
            golden[k].config = config.machine;
            golden[k].memInit =
                kernels::memImage(kernel, config.machine.memory.memBytes);
            double *slot = &goldenSums[k];
            golden[k].body = [checksum = kernel.checksum,
                              slot](machine::Machine &m) {
                machine::RunStats stats = m.run();
                *slot = checksum(m.mem());
                return stats;
            };
        }
        std::vector<machine::SimJobResult> res = driver.run(golden);
        for (size_t k = 0; k < nk; ++k) {
            if (!res[k].ok) {
                fatal("fault campaign: golden run of " +
                      kernel_list[k].name + " failed: " + res[k].error);
            }
            result.kernels.push_back(kernel_list[k].name);
            result.goldenChecksums.push_back(goldenSums[k]);
            result.goldenCycles.push_back(res[k].stats.cycles);
        }
    }

    // Optional journal: trials recorded by a previous (killed) run
    // are loaded up front and skipped; new results append as workers
    // finish them.
    std::unordered_map<std::string, FaultTrial> already;
    std::FILE *journal = nullptr;
    if (!config.journalPath.empty()) {
        already = readJournal(config.journalPath);
        if (!already.empty())
            inform("journal holds " + std::to_string(already.size()) +
                   " completed trial(s); resuming");
        journal = std::fopen(config.journalPath.c_str(), "a");
        if (!journal) {
            warn("cannot open journal " + config.journalPath);
        } else if (std::fseek(journal, 0, SEEK_END) == 0 &&
                   std::ftell(journal) > 0) {
            // A SIGKILLed run may have died mid-line; appending onto
            // that torn tail would merge the first new record into it.
            // An unconditional newline keeps every new record on its
            // own line (readJournal skips blank lines).
            std::fputc('\n', journal);
        }
    }

    // Phase 2: the seeded trial sweep, one single-fault plan per
    // (kernel, trial) pair, all across the driver pool. Trials found
    // in the journal keep their recorded outcome and do not simulate.
    std::vector<machine::SimJob> jobs;
    std::vector<FaultTrial> trials;
    std::vector<size_t> jobTrial; // batch index -> trial index
    const size_t total = nk * config.faultsPerKernel;
    jobs.reserve(total);
    trials.reserve(total);
    jobTrial.reserve(total);
    std::vector<double> sums(total, 0.0);
    for (size_t k = 0; k < nk; ++k) {
        const kernels::Kernel &kernel = kernel_list[k];
        const std::vector<std::pair<uint64_t, uint64_t>> image =
            kernels::memImage(kernel, config.machine.memory.memBytes);
        machine::MachineConfig trial_cfg = config.machine;
        trial_cfg.maxCycles =
            result.goldenCycles[k] * config.guardFactor + 10000;

        // Gather this kernel's pending trials first: fork mode needs
        // the set of injection cycles before any job can be built.
        struct Pending
        {
            size_t trial;
            FaultPlan plan;
        };
        std::vector<Pending> pending;
        std::set<uint64_t> forkCycles;
        for (unsigned i = 0; i < config.faultsPerKernel; ++i) {
            const uint64_t seed = trialSeed(config.seed, k, i);
            FaultPlan plan =
                FaultPlan::randomSingle(seed, result.goldenCycles[k]);

            FaultTrial trial;
            trial.kernel = kernel.name;
            trial.seed = seed;
            trial.plan = plan;

            const auto it = already.find(trialKey(kernel.name, seed));
            if (it != already.end()) {
                trial.outcome = it->second.outcome;
                trial.errorCode = it->second.errorCode;
                trial.cycles = it->second.cycles;
                trials.push_back(std::move(trial));
                continue;
            }
            trials.push_back(std::move(trial));
            if (config.fork && !plan.empty())
                forkCycles.insert(plan.faults().front().cycle);
            pending.push_back({trials.size() - 1, std::move(plan)});
        }

        std::shared_ptr<std::map<uint64_t, ForkPoint>> forks;
        if (config.fork && !forkCycles.empty())
            forks = captureForkPoints(kernel, trial_cfg, image, forkCycles,
                                      config.lockstep);

        for (Pending &p : pending) {
            const FaultTrial &trial = trials[p.trial];
            machine::SimJob job;
            job.name = kernel.name + "-fault-" + std::to_string(trial.seed);
            job.program = kernel.program;
            job.config = trial_cfg;
            job.memInit = image;
            double *slot = &sums[jobs.size()];
            job.body = [checksum = kernel.checksum,
                        slot](machine::Machine &m) {
                machine::RunStats stats = m.run();
                *slot = checksum(m.mem());
                return stats;
            };
            if (forks && !p.plan.empty()) {
                // Fork mode: restore the paired machine + checker
                // snapshot instead of simulating the prefix. setup
                // runs before hookFactory on the worker, so the
                // program is in place when the checker reloads it.
                const uint64_t at = p.plan.faults().front().cycle;
                job.faultExpected = true;
                job.setup = [forks, at](machine::Machine &m) {
                    snapshot::restore(m, forks->at(at).machine);
                };
                job.hookFactory = [plan = std::move(p.plan), forks, at,
                                   lockstep =
                                       config.lockstep](machine::Machine &m) {
                    auto hook = std::make_shared<PlanHook>(std::move(plan));
                    if (lockstep) {
                        hook->checker =
                            std::make_unique<machine::LockstepChecker>(m);
                        ByteReader in(forks->at(at).checker);
                        hook->checker->restoreState(in);
                        m.addObserver(hook->checker.get());
                    }
                    return std::shared_ptr<machine::MachineHook>(
                        std::move(hook));
                };
            } else {
                attachPlan(job, std::move(p.plan), config.lockstep);
            }
            jobTrial.push_back(p.trial);
            jobs.push_back(std::move(job));
        }
    }

    // Journal lines are written from worker threads the moment a
    // trial finishes; the mutex keeps lines whole and the flush
    // bounds what a SIGKILL can lose to the line in flight.
    std::mutex journalMutex;
    if (journal) {
        driver.setResultCallback(
            [&](size_t j, const machine::SimJobResult &r) {
                FaultTrial trial = trials[jobTrial[j]];
                const size_t k = jobTrial[j] / config.faultsPerKernel;
                classifyTrial(trial, r, sums[j], result.goldenChecksums[k]);
                const std::string line = trial.to_json() + "\n";
                std::lock_guard<std::mutex> lock(journalMutex);
                std::fwrite(line.data(), 1, line.size(), journal);
                std::fflush(journal);
            });
    }

    const std::vector<machine::SimJobResult> res = driver.run(jobs);
    if (journal)
        std::fclose(journal);
    for (size_t j = 0; j < res.size(); ++j) {
        const size_t k = jobTrial[j] / config.faultsPerKernel;
        classifyTrial(trials[jobTrial[j]], res[j], sums[j],
                      result.goldenChecksums[k]);
    }
    result.trials = std::move(trials);

    if (!config.reportDir.empty()) {
        try {
            std::filesystem::create_directories(config.reportDir);
            const std::string path = config.reportDir + "/campaign.json";
            std::FILE *f = std::fopen(path.c_str(), "w");
            if (f) {
                const std::string json = result.to_json();
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                inform("campaign record written to " + path);
            } else {
                warn("cannot write campaign record " + path);
            }
        } catch (const std::exception &err) {
            warn(std::string("campaign record failed: ") + err.what());
        }
    }
    return result;
}

} // namespace mtfpu::faults
