#include "faults/campaign.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "common/log.hh"
#include "common/table.hh"
#include "faults/fault_injector.hh"
#include "kernels/runner.hh"
#include "machine/lockstep.hh"

namespace mtfpu::faults
{

namespace
{

/**
 * The hook a plan attaches: the injector itself plus (optionally) a
 * lockstep checker whose lifetime it carries — the driver keeps the
 * hook alive for exactly the duration of the job, which is also the
 * window the checker's Machine reference is valid for.
 */
struct PlanHook : machine::MachineHook
{
    explicit PlanHook(FaultPlan plan) : injector(std::move(plan)) {}

    void
    onCycleStart(uint64_t cycle, machine::Machine &m) override
    {
        injector.onCycleStart(cycle, m);
    }

    FaultInjector injector;
    std::unique_ptr<machine::LockstepChecker> checker;
};

/** Bit-exact double comparison (NaN-safe, unlike operator==). */
bool
bitEqual(double a, double b)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

/** Deterministic per-trial seed from (base, kernel, trial). */
uint64_t
trialSeed(uint64_t base, size_t kernel, unsigned trial)
{
    uint64_t s = base;
    s ^= (kernel + 1) * 0x9e3779b97f4a7c15ull;
    s ^= (static_cast<uint64_t>(trial) + 1) * 0xc2b2ae3d27d4eb4full;
    return s;
}

} // anonymous namespace

void
attachPlan(machine::SimJob &job, FaultPlan plan, bool lockstep)
{
    job.faultExpected = !plan.empty();
    job.hookFactory = [plan = std::move(plan),
                       lockstep](machine::Machine &m) {
        auto hook = std::make_shared<PlanHook>(plan);
        if (lockstep) {
            hook->checker = std::make_unique<machine::LockstepChecker>(m);
            m.addObserver(hook->checker.get());
        }
        return std::shared_ptr<machine::MachineHook>(std::move(hook));
    };
}

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::DetectedHardware: return "detected-hardware";
      case FaultOutcome::DetectedLockstep: return "detected-lockstep";
      case FaultOutcome::Masked: return "masked";
      case FaultOutcome::Sdc: return "sdc";
    }
    return "unknown";
}

std::string
FaultTrial::to_json() const
{
    return "{\"kernel\":\"" + jsonEscape(kernel) +
           "\",\"seed\":" + std::to_string(seed) +
           ",\"faults\":" + plan.to_json() + ",\"outcome\":\"" +
           faultOutcomeName(outcome) + "\",\"error_code\":\"" +
           jsonEscape(errorCode) +
           "\",\"cycles\":" + std::to_string(cycles) + "}";
}

unsigned
CampaignResult::count(FaultOutcome outcome) const
{
    unsigned n = 0;
    for (const FaultTrial &trial : trials)
        n += trial.outcome == outcome;
    return n;
}

std::string
CampaignResult::table() const
{
    TextTable table({"kernel", "trials", "hw-detect", "lockstep", "masked",
                     "sdc", "coverage%"});
    auto addRow = [&](const std::string &name) {
        unsigned n = 0, hw = 0, ls = 0, masked = 0, sdc = 0;
        for (const FaultTrial &t : trials) {
            if (!name.empty() && t.kernel != name)
                continue;
            ++n;
            switch (t.outcome) {
              case FaultOutcome::DetectedHardware: ++hw; break;
              case FaultOutcome::DetectedLockstep: ++ls; break;
              case FaultOutcome::Masked: ++masked; break;
              case FaultOutcome::Sdc: ++sdc; break;
            }
        }
        // Coverage = detected / not-masked (masked flips are benign).
        const unsigned exposed = hw + ls + sdc;
        const double coverage =
            exposed ? 100.0 * (hw + ls) / exposed : 100.0;
        table.addRow({name.empty() ? "TOTAL" : name, std::to_string(n),
                      std::to_string(hw), std::to_string(ls),
                      std::to_string(masked), std::to_string(sdc),
                      TextTable::num(coverage, 1)});
    };
    for (const std::string &name : kernels)
        addRow(name);
    table.addSeparator();
    addRow("");
    return table.render();
}

std::string
CampaignResult::to_json() const
{
    std::string json = "{\n  \"kernels\": [";
    for (size_t i = 0; i < kernels.size(); ++i) {
        if (i)
            json += ",";
        json += "{\"name\":\"" + jsonEscape(kernels[i]) +
                "\",\"golden_cycles\":" + std::to_string(goldenCycles[i]) +
                "}";
    }
    json += "],\n  \"summary\": {";
    bool first = true;
    for (FaultOutcome o :
         {FaultOutcome::DetectedHardware, FaultOutcome::DetectedLockstep,
          FaultOutcome::Masked, FaultOutcome::Sdc}) {
        if (!first)
            json += ",";
        first = false;
        json += std::string("\"") + faultOutcomeName(o) +
                "\":" + std::to_string(count(o));
    }
    json += "},\n  \"trials\": [\n";
    for (size_t i = 0; i < trials.size(); ++i) {
        json += "    " + trials[i].to_json();
        if (i + 1 < trials.size())
            json += ",";
        json += "\n";
    }
    json += "  ]\n}\n";
    return json;
}

CampaignResult
runCampaign(const std::vector<kernels::Kernel> &kernel_list,
            const CampaignConfig &config)
{
    CampaignResult result;
    machine::SimDriver driver(config.threads);

    // Phase 1: one golden run per kernel pins the fault-free checksum
    // and cycle count (the latter bounds trial fault cycles and sizes
    // the runaway guard).
    const size_t nk = kernel_list.size();
    std::vector<double> goldenSums(nk, 0.0);
    {
        std::vector<machine::SimJob> golden(nk);
        for (size_t k = 0; k < nk; ++k) {
            const kernels::Kernel &kernel = kernel_list[k];
            golden[k].name = kernel.name + "-golden";
            golden[k].program = kernel.program;
            golden[k].config = config.machine;
            golden[k].memInit =
                kernels::memImage(kernel, config.machine.memory.memBytes);
            double *slot = &goldenSums[k];
            golden[k].body = [checksum = kernel.checksum,
                              slot](machine::Machine &m) {
                machine::RunStats stats = m.run();
                *slot = checksum(m.mem());
                return stats;
            };
        }
        std::vector<machine::SimJobResult> res = driver.run(golden);
        for (size_t k = 0; k < nk; ++k) {
            if (!res[k].ok) {
                fatal("fault campaign: golden run of " +
                      kernel_list[k].name + " failed: " + res[k].error);
            }
            result.kernels.push_back(kernel_list[k].name);
            result.goldenChecksums.push_back(goldenSums[k]);
            result.goldenCycles.push_back(res[k].stats.cycles);
        }
    }

    // Phase 2: the seeded trial sweep, one single-fault plan per
    // (kernel, trial) pair, all across the driver pool.
    std::vector<machine::SimJob> jobs;
    std::vector<FaultTrial> trials;
    const size_t total = nk * config.faultsPerKernel;
    jobs.reserve(total);
    trials.reserve(total);
    std::vector<double> sums(total, 0.0);
    for (size_t k = 0; k < nk; ++k) {
        const kernels::Kernel &kernel = kernel_list[k];
        const std::vector<std::pair<uint64_t, uint64_t>> image =
            kernels::memImage(kernel, config.machine.memory.memBytes);
        machine::MachineConfig trial_cfg = config.machine;
        trial_cfg.maxCycles =
            result.goldenCycles[k] * config.guardFactor + 10000;
        for (unsigned i = 0; i < config.faultsPerKernel; ++i) {
            const uint64_t seed = trialSeed(config.seed, k, i);
            FaultPlan plan =
                FaultPlan::randomSingle(seed, result.goldenCycles[k]);

            FaultTrial trial;
            trial.kernel = kernel.name;
            trial.seed = seed;
            trial.plan = plan;
            trials.push_back(trial);

            machine::SimJob job;
            job.name = kernel.name + "-fault-" + std::to_string(seed);
            job.program = kernel.program;
            job.config = trial_cfg;
            job.memInit = image;
            double *slot = &sums[jobs.size()];
            job.body = [checksum = kernel.checksum,
                        slot](machine::Machine &m) {
                machine::RunStats stats = m.run();
                *slot = checksum(m.mem());
                return stats;
            };
            attachPlan(job, std::move(plan), config.lockstep);
            jobs.push_back(std::move(job));
        }
    }

    const std::vector<machine::SimJobResult> res = driver.run(jobs);
    for (size_t i = 0; i < res.size(); ++i) {
        FaultTrial &trial = trials[i];
        const machine::SimJobResult &r = res[i];
        trial.cycles = r.stats.cycles;
        trial.errorCode = r.errorCode;
        const size_t k = i / config.faultsPerKernel;
        if (r.ok) {
            trial.outcome = bitEqual(sums[i], result.goldenChecksums[k])
                                ? FaultOutcome::Masked
                                : FaultOutcome::Sdc;
        } else if (r.errorCode ==
                   errCodeName(ErrCode::LockstepDivergence)) {
            trial.outcome = FaultOutcome::DetectedLockstep;
        } else {
            trial.outcome = FaultOutcome::DetectedHardware;
        }
    }
    result.trials = std::move(trials);

    if (!config.reportDir.empty()) {
        try {
            std::filesystem::create_directories(config.reportDir);
            const std::string path = config.reportDir + "/campaign.json";
            std::FILE *f = std::fopen(path.c_str(), "w");
            if (f) {
                const std::string json = result.to_json();
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                inform("campaign record written to " + path);
            } else {
                warn("cannot write campaign record " + path);
            }
        } catch (const std::exception &err) {
            warn(std::string("campaign record failed: ") + err.what());
        }
    }
    return result;
}

} // namespace mtfpu::faults
