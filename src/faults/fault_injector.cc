#include "faults/fault_injector.hh"

#include <cstdio>

#include "isa/cpu_instr.hh"
#include "isa/fpu_instr.hh"

namespace mtfpu::faults
{

namespace
{

std::string
logLine(uint64_t cycle, const char *site, const std::string &victim,
        uint64_t mask)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "@%llu %s %s ^0x%llx",
                  static_cast<unsigned long long>(cycle), site,
                  victim.c_str(), static_cast<unsigned long long>(mask));
    return buf;
}

} // anonymous namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void
FaultInjector::reset()
{
    next_ = 0;
    log_.clear();
}

void
FaultInjector::onCycleStart(uint64_t cycle, machine::Machine &machine)
{
    while (next_ < plan_.size() &&
           plan_.faults()[next_].cycle <= cycle) {
        log_.push_back(apply(plan_.faults()[next_], cycle, machine));
        ++next_;
    }
}

std::string
FaultInjector::apply(const Fault &fault, uint64_t cycle,
                     machine::Machine &machine)
{
    switch (fault.site) {
      case FaultSite::FpuReg: {
        const unsigned reg =
            static_cast<unsigned>(fault.index % isa::kNumFpuRegs);
        fpu::RegisterFile &regs = machine.fpu().regs();
        regs.write(reg, regs.read(reg) ^ fault.mask);
        return logLine(cycle, "fpu-reg", "f" + std::to_string(reg),
                       fault.mask);
      }
      case FaultSite::CpuReg: {
        // r0 is architecturally zero; strike r1..r31.
        const unsigned reg =
            1 + static_cast<unsigned>(fault.index % (isa::kNumIntRegs - 1));
        cpu::Cpu &cpu = machine.cpu();
        cpu.writeReg(reg, cpu.readReg(reg) ^ fault.mask);
        return logLine(cycle, "cpu-reg", "r" + std::to_string(reg),
                       fault.mask);
      }
      case FaultSite::CacheLine: {
        memory::DirectMappedCache &cache =
            machine.memorySystem().dataCache();
        const uint64_t line = fault.index % cache.numLines();
        cache.corruptLine(line, fault.mask >> 1, fault.mask & 1);
        return logLine(cycle, "cache-line", "line" + std::to_string(line),
                       fault.mask);
      }
      case FaultSite::MemWord: {
        memory::MainMemory &mem = machine.mem();
        const uint64_t addr = (fault.index % (mem.size() / 8)) * 8;
        mem.write64(addr, mem.read64(addr) ^ fault.mask);
        char victim[32];
        std::snprintf(victim, sizeof(victim), "mem[0x%llx]",
                      static_cast<unsigned long long>(addr));
        return logLine(cycle, "mem-word", victim, fault.mask);
      }
      case FaultSite::SoftfpResult:
        machine.fpu().armElementCorruption(fault.mask, 0);
        return logLine(cycle, "softfp-result", "next-element", fault.mask);
      case FaultSite::SoftfpFlags:
        machine.fpu().armElementCorruption(
            0, static_cast<uint8_t>(fault.mask & 0x1f));
        return logLine(cycle, "softfp-flags", "next-element",
                       fault.mask & 0x1f);
    }
    return logLine(cycle, "unknown", "?", fault.mask);
}

} // namespace mtfpu::faults
