/**
 * @file
 * Fault-injection campaigns: sweep N seeded single-fault plans over a
 * set of benchmark kernels and classify every outcome the way the
 * architecture-reliability literature tabulates soft errors:
 *
 *   - detected-hardware: a model check fired first — scoreboard
 *     hazard, register/memory range guard, cycle/watchdog guard;
 *   - detected-lockstep: the differential checker against the untimed
 *     interpreter caught an architectural-state divergence;
 *   - masked: the run completed and the output checksum is bit-equal
 *     to the fault-free golden run (the flip landed in dead state);
 *   - sdc: silent data corruption — the run completed "successfully"
 *     with a wrong checksum. With the lockstep checker attached this
 *     class is structurally impossible (any architectural corruption
 *     that reaches the output also diverges from the shadow), which
 *     is exactly what the CI smoke job asserts.
 *
 * attachPlan() is the bridge into the batch driver: it wires a
 * FaultPlan into a machine::SimJob via the hookFactory surface, so
 * the SimDriver itself stays fault-agnostic.
 */

#ifndef MTFPU_FAULTS_CAMPAIGN_HH
#define MTFPU_FAULTS_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hh"
#include "kernels/kernel.hh"
#include "machine/sim_driver.hh"

namespace mtfpu::faults
{

/**
 * Wire @p plan into @p job: installs a hookFactory building a
 * FaultInjector (plus, when @p lockstep, a LockstepChecker observer
 * sharing its lifetime) and flags the job faultExpected so the driver
 * treats failure as a normal outcome. An empty plan still attaches
 * (useful for golden runs under identical instrumentation) but leaves
 * faultExpected false.
 */
void attachPlan(machine::SimJob &job, FaultPlan plan, bool lockstep);

/** Outcome class of one fault-injection trial. */
enum class FaultOutcome : uint8_t
{
    DetectedHardware,
    DetectedLockstep,
    Masked,
    Sdc,
};

/** Short stable name, e.g. "detected-hardware". */
const char *faultOutcomeName(FaultOutcome outcome);

/**
 * Deterministic per-trial seed, the exact derivation runCampaign uses
 * internally. Exposed so tooling (fault_campaign --export-specs) can
 * regenerate the precise fault plans a campaign with @p base would
 * run, without running it.
 */
uint64_t campaignTrialSeed(uint64_t base, size_t kernel_index,
                           unsigned trial);

/** One classified trial. */
struct FaultTrial
{
    std::string kernel;
    uint64_t seed = 0;
    FaultPlan plan;
    FaultOutcome outcome = FaultOutcome::Masked;
    std::string errorCode; // taxonomy name when a check fired
    uint64_t cycles = 0;   // cycles simulated (partial on failure)

    /** One JSON object for campaign logs. */
    std::string to_json() const;
};

/** Campaign parameters. */
struct CampaignConfig
{
    /** Single-fault trials per kernel. */
    unsigned faultsPerKernel = 25;

    /** Base seed; trial seeds derive deterministically from it. */
    uint64_t seed = 1;

    /** Attach the lockstep checker to every trial. */
    bool lockstep = true;

    /** Worker threads (0 = hardware concurrency). */
    unsigned threads = 0;

    /** Machine configuration shared by golden and trial runs. */
    machine::MachineConfig machine{};

    /**
     * Cycle-guard headroom for corrupted runs: a trial's maxCycles is
     * golden_cycles * this factor (+ a fixed floor), so a fault that
     * destroys a loop bound ends in CycleGuard instead of running to
     * the global 2G-cycle default.
     */
    uint64_t guardFactor = 16;

    /** Directory for campaign.json (empty = don't write). */
    std::string reportDir;

    /**
     * Trial journal for resumable campaigns. When non-empty, every
     * finished trial is appended to this file as one JSON line the
     * moment its worker classifies it (fflush'd, so a SIGKILL loses at
     * most the line being written), and a campaign started over an
     * existing journal skips every (kernel, seed) trial already
     * recorded — rerunning a killed campaign with the same parameters
     * and journal completes the remaining trials and reports the same
     * classification counts as an uninterrupted run. A torn final
     * line is detected by its failed JSON parse and ignored. The
     * journal assumes the campaign parameters (kernels, seed, machine
     * config) are unchanged between runs; it records outcomes, not
     * configuration.
     */
    std::string journalPath;

    /**
     * Snapshot-fork the shared golden prefix: one reference machine
     * per kernel runs under the trial configuration (lockstep shadow
     * attached), pausing at each distinct injection cycle to capture
     * a paired machine + checker snapshot; each trial then restores
     * its fork point and simulates only from its injection cycle
     * onward. Classification is bit-identical to the from-scratch
     * sweep — the injector is stateless before its fault fires, so
     * the forked prefix and the full run agree exactly.
     */
    bool fork = false;
};

/** Everything a campaign produces. */
struct CampaignResult
{
    std::vector<FaultTrial> trials;

    /** Per-kernel golden checksums/cycle counts, in kernel order. */
    std::vector<std::string> kernels;
    std::vector<double> goldenChecksums;
    std::vector<uint64_t> goldenCycles;

    unsigned count(FaultOutcome outcome) const;
    bool sdcFree() const { return count(FaultOutcome::Sdc) == 0; }

    /** Paper-style classification table. */
    std::string table() const;

    /** Full campaign record (config echo + every trial). */
    std::string to_json() const;
};

/**
 * Run the campaign: one golden (fault-free) run per kernel to fix the
 * reference checksum and cycle count, then faultsPerKernel seeded
 * single-fault trials per kernel across the SimDriver pool, each
 * classified per the scheme above. Throws only on setup errors —
 * trial failures are outcomes, not errors.
 */
CampaignResult runCampaign(const std::vector<kernels::Kernel> &kernel_list,
                           const CampaignConfig &config = CampaignConfig{});

} // namespace mtfpu::faults

#endif // MTFPU_FAULTS_CAMPAIGN_HH
