/**
 * @file
 * The FaultInjector interprets a FaultPlan against a live Machine
 * through the MachineHook surface: at each hooked cycle it fires every
 * fault whose scheduled cycle has been reached. Because the Machine
 * fast-forwards bulk stalls, a hook may observe cycle numbers jumping
 * — the injector therefore treats a fault's cycle as "at or after",
 * never "exactly at", and fires in schedule order.
 *
 * Site semantics (indices are reduced modulo the real resource count,
 * so randomly generated plans always land on a valid victim):
 *   - FpuReg / CpuReg: XOR the mask into the register (r0 is excluded
 *     — it is architecturally zero);
 *   - MemWord: XOR the mask into an aligned 64-bit memory word;
 *   - CacheLine: corrupt a data-cache line's tag (mask >> 1) and/or
 *     valid bit (mask & 1) — a *timing* fault: the tag store is a
 *     model, so data can never be corrupted, only hit/miss behavior;
 *   - SoftfpResult / SoftfpFlags: arm a one-shot corruption of the
 *     next FPU element's result bits / IEEE flags (a datapath fault
 *     inside the functional unit).
 */

#ifndef MTFPU_FAULTS_FAULT_INJECTOR_HH
#define MTFPU_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hh"
#include "machine/hook.hh"
#include "machine/machine.hh"

namespace mtfpu::faults
{

/** MachineHook that fires a FaultPlan's faults as cycles pass. */
class FaultInjector : public machine::MachineHook
{
  public:
    explicit FaultInjector(FaultPlan plan);

    void onCycleStart(uint64_t cycle, machine::Machine &machine) override;

    /** Faults fired so far this run. */
    size_t fired() const { return next_; }

    /** Whether every scheduled fault has fired. */
    bool done() const { return next_ == plan_.size(); }

    /**
     * One line per fired fault describing the *resolved* victim
     * (after index reduction), e.g. "@120 fpu-reg f17 ^0x40".
     */
    const std::vector<std::string> &log() const { return log_; }

    const FaultPlan &plan() const { return plan_; }

    /** Rewind for another run of the same plan. */
    void reset();

  private:
    /** Apply one fault to the machine; returns the log line. */
    std::string apply(const Fault &fault, uint64_t cycle,
                      machine::Machine &machine);

    FaultPlan plan_;
    size_t next_ = 0; // first not-yet-fired fault
    std::vector<std::string> log_;
};

} // namespace mtfpu::faults

#endif // MTFPU_FAULTS_FAULT_INJECTOR_HH
