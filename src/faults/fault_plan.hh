/**
 * @file
 * Fault plans: *what* to break, *where*, and *when*. A FaultPlan is a
 * pure-data schedule of state corruptions — it knows nothing about the
 * Machine; the FaultInjector (fault_injector.hh) interprets it against
 * live machine state through the MachineHook surface.
 *
 * Plans come from three places:
 *   - programmatic construction (tests pinning an exact fault);
 *   - seeded random generation (campaign sweeps — one plan per seed,
 *     reproducible by construction);
 *   - a tiny text format (one fault per line: `cycle site index mask`)
 *    for replaying a fault from a crash report or the command line.
 */

#ifndef MTFPU_FAULTS_FAULT_PLAN_HH
#define MTFPU_FAULTS_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mtfpu::faults
{

/** Architectural or microarchitectural state a fault can strike. */
enum class FaultSite : uint8_t
{
    FpuReg,       // flip bits in an FPU register (index = f0..f51)
    CpuReg,       // flip bits in a CPU register (index = r1..r31)
    CacheLine,    // corrupt a data-cache tag / valid bit (timing only)
    MemWord,      // flip bits in a 64-bit main-memory word
    SoftfpResult, // XOR the next FPU element result (datapath fault)
    SoftfpFlags,  // XOR the next FPU element's IEEE flags
};

/** Number of distinct fault sites (for site enumeration/rng). */
constexpr unsigned kNumFaultSites = 6;

/** Short stable name of a site, e.g. "fpu-reg". */
const char *faultSiteName(FaultSite site);

/** Parse a site name back (throws SimError on unknown names). */
FaultSite faultSiteFromName(const std::string &name);

/** One scheduled state corruption. */
struct Fault
{
    /** Cycle at (or after) which the fault fires. */
    uint64_t cycle = 0;

    FaultSite site = FaultSite::MemWord;

    /**
     * Which instance of the site: register number, cache-line index,
     * or memory word index. The injector reduces it modulo the actual
     * resource count, so any 64-bit value is valid.
     */
    uint64_t index = 0;

    /**
     * XOR mask applied to the victim state. For CacheLine, bit 0
     * requests a valid-bit flip and the rest XOR the tag. For
     * SoftfpFlags only the low 5 bits are used (overflow, underflow,
     * inexact, invalid, div-by-zero).
     */
    uint64_t mask = 0;

    bool operator==(const Fault &) const = default;

    /** Human-readable one-liner, e.g. "@120 fpu-reg[17] ^0x40". */
    std::string describe() const;
};

/** An ordered schedule of faults. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Plan with the given faults (sorted by cycle on construction). */
    explicit FaultPlan(std::vector<Fault> faults);

    /** Append one fault (keeps the schedule sorted). */
    void add(const Fault &fault);

    /**
     * Generate a single-fault plan from a seed: site, index, mask,
     * and cycle (uniform in [0, max_cycle]) are all derived from the
     * seed via a private mt19937_64 stream, so a (seed, max_cycle)
     * pair names a reproducible fault forever. Bit-flip masks are
     * single-bit for register/memory sites — the classic SEU model.
     */
    static FaultPlan randomSingle(uint64_t seed, uint64_t max_cycle);

    /**
     * Parse the text format: one fault per line,
     * `<cycle> <site-name> <index> <mask>` (mask in hex with or
     * without 0x; '#' starts a comment). Throws SimError with code
     * BadOperand on malformed input.
     */
    static FaultPlan parse(const std::string &text);

    const std::vector<Fault> &faults() const { return faults_; }
    bool empty() const { return faults_.empty(); }
    size_t size() const { return faults_.size(); }

    bool operator==(const FaultPlan &) const = default;

    /** The text format round-trip of parse(). */
    std::string describe() const;

    /** JSON array of fault objects (campaign logs, crash reports). */
    std::string to_json() const;

  private:
    std::vector<Fault> faults_; // sorted by cycle
};

} // namespace mtfpu::faults

#endif // MTFPU_FAULTS_FAULT_PLAN_HH
