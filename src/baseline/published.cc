#include "baseline/published.hh"

namespace mtfpu::baseline
{

const std::array<Figure14Row, 24> &
figure14()
{
    static const std::array<Figure14Row, 24> rows = {{
        {1, 4.3, 19.0, 68.4, 164.6, true},
        {2, 2.8, 17.3, 16.4, 45.1, true},
        {3, 2.8, 17.3, 63.1, 151.7, true},
        {4, 2.3, 14.5, 20.6, 65.9, true},
        {5, 2.0, 8.0, 5.3, 14.4, false},
        {6, 3.4, 5.2, 6.6, 11.3, true},
        {7, 6.9, 23.4, 82.1, 187.8, true},
        {8, 6.0, 19.9, 65.6, 145.8, true},
        {9, 3.6, 20.3, 80.4, 157.5, true},
        {10, 1.5, 7.1, 28.1, 61.2, true},
        {11, 1.7, 6.6, 4.4, 12.7, false},
        {12, 1.4, 7.9, 21.8, 74.3, true},
        {13, 1.4, 1.8, 4.1, 5.8, false},
        {14, 2.6, 3.1, 7.3, 22.2, false},
        {15, 1.5, 1.6, 3.8, 5.2, false},
        {16, 2.3, 2.5, 3.2, 6.2, false},
        {17, 4.0, 4.9, 7.6, 10.1, false},
        {18, 7.4, 14.8, 54.9, 110.6, true},
        {19, 2.6, 4.2, 6.5, 13.4, false},
        {20, 4.5, 4.7, 9.6, 13.2, false},
        {21, 15.9, 21.4, 32.8, 108.9, true},
        {22, 2.4, 2.7, 39.9, 65.8, true},
        {23, 3.0, 7.4, 10.4, 13.9, false},
        {24, 1.1, 1.6, 1.6, 3.6, false},
    }};
    return rows;
}

const Figure14Means &
figure14Means()
{
    static const Figure14Means means = {
        2.5, 10.8, 14.4, 35.8, // loops 1-12
        2.4, 3.2, 5.6, 10.0,   // loops 13-24
        2.5, 4.9, 8.0, 15.6,   // loops 1-24
    };
    return means;
}

const std::array<LatencyRow, 3> &
figure10()
{
    static const std::array<LatencyRow, 3> rows = {{
        {"Addition, Subtraction", 120.0, 57.0},
        {"Multiplication", 120.0, 66.5},
        {"Division (via 1/x)", 720.0, 332.5},
    }};
    return rows;
}

const LinpackPaper &
linpackPaper()
{
    static const LinpackPaper paper = {4.1, 6.1, 24.4, 48.8};
    return paper;
}

} // namespace mtfpu::baseline
