/**
 * @file
 * The vectorization-potential model behind Figure 11: overall
 * performance relative to a scalar machine when a fraction f of the
 * work vectorizes and the peak vector rate is R times the scalar
 * rate: speedup(f, R) = 1 / ((1 - f) + f/R).
 */

#ifndef MTFPU_BASELINE_AMDAHL_HH
#define MTFPU_BASELINE_AMDAHL_HH

#include <vector>

namespace mtfpu::baseline
{

/** Overall speedup for vectorized fraction @p f and peak ratio @p R. */
double overallSpeedup(double f, double R);

/**
 * The vectorized fraction implied by a measured overall speedup at a
 * given peak ratio (inverse of overallSpeedup in f).
 */
double impliedVectorFraction(double speedup, double R);

/** A sampled Figure 11 curve for one vectorization fraction. */
struct SpeedupCurve
{
    double fraction;
    std::vector<double> ratios;
    std::vector<double> speedups;
};

/** Sample speedup curves for the Figure 11 fractions (0.2..1.0). */
std::vector<SpeedupCurve> figure11Curves(double max_ratio = 10.0,
                                         double step = 0.5);

} // namespace mtfpu::baseline

#endif // MTFPU_BASELINE_AMDAHL_HH
