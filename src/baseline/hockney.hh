/**
 * @file
 * Hockney's (n1/2, r_inf) characterization of vector machines
 * (paper §2.2, citing Hockney & Jesshope): a vector operation of
 * length n takes t(n) = (n + n1/2)/r_inf, so the achieved rate is
 * r(n) = r_inf * n/(n + n1/2). n1/2 is the vector length at which
 * half the peak rate is reached. The paper contrasts the MultiTitan's
 * n1/2 of about 4 with the Cray-1 (15), the CDC Cyber 205 (100), and
 * the ICL DAP (2048).
 */

#ifndef MTFPU_BASELINE_HOCKNEY_HH
#define MTFPU_BASELINE_HOCKNEY_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace mtfpu::baseline
{

/** One machine's vector-performance characterization. */
struct HockneyParams
{
    const char *name;
    double rInfMflops; // asymptotic rate
    double nHalf;      // half-performance vector length
};

/** Achieved MFLOPS at vector length @p n. */
double hockneyRate(const HockneyParams &params, double n);

/** Time in microseconds for one vector operation of length @p n. */
double hockneyTimeUs(const HockneyParams &params, double n);

/**
 * Fit (n1/2, r_inf) from measured (length, cycles) samples by least
 * squares on the linear model cycles = t0 + tau*n; then
 * n1/2 = t0/tau and r_inf = 1/tau (in results per cycle). Used to
 * measure the simulator's own n1/2 (§2.2.1).
 */
struct HockneyFit
{
    double nHalf;
    double resultsPerCycle; // asymptotic rate in results/cycle
};

HockneyFit fitHockney(
    const std::vector<std::pair<double, double>> &length_cycles);

/** The classical machines the paper names for n1/2 context. */
const std::vector<HockneyParams> &classicalMachines();

} // namespace mtfpu::baseline

#endif // MTFPU_BASELINE_HOCKNEY_HH
