#include "baseline/amdahl.hh"

#include "common/log.hh"

namespace mtfpu::baseline
{

double
overallSpeedup(double f, double R)
{
    if (f < 0.0 || f > 1.0)
        fatal("overallSpeedup: fraction must be in [0, 1]");
    if (R <= 0.0)
        fatal("overallSpeedup: ratio must be positive");
    return 1.0 / ((1.0 - f) + f / R);
}

double
impliedVectorFraction(double speedup, double R)
{
    if (speedup < 1.0 || R <= 1.0)
        fatal("impliedVectorFraction: need speedup >= 1 and R > 1");
    // 1/s = 1 - f + f/R  =>  f = (1 - 1/s) / (1 - 1/R).
    return (1.0 - 1.0 / speedup) / (1.0 - 1.0 / R);
}

std::vector<SpeedupCurve>
figure11Curves(double max_ratio, double step)
{
    std::vector<SpeedupCurve> curves;
    for (double f : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        SpeedupCurve c;
        c.fraction = f;
        for (double r = 1.0; r <= max_ratio + 1e-9; r += step) {
            c.ratios.push_back(r);
            c.speedups.push_back(overallSpeedup(f, r));
        }
        curves.push_back(std::move(c));
    }
    return curves;
}

} // namespace mtfpu::baseline
