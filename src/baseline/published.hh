/**
 * @file
 * Published reference numbers from the paper, used by the benchmark
 * harnesses to print side-by-side comparisons:
 *   - Figure 14: MultiTitan cold/warm and Cray-1S / Cray X-MP MFLOPS
 *     per Livermore loop (Cray values from McMahon [5] and
 *     Tang & Davidson [12], as cited by the paper);
 *   - Figure 10: functional-unit latencies;
 *   - §3.3: Linpack results.
 */

#ifndef MTFPU_BASELINE_PUBLISHED_HH
#define MTFPU_BASELINE_PUBLISHED_HH

#include <array>

namespace mtfpu::baseline
{

/** One Figure 14 row (MFLOPS). */
struct Figure14Row
{
    int loop;
    double multititanCold;
    double multititanWarm;
    double cray1s;
    double crayXmp;
    bool vectorizedOnCray; // the '*' column marker
};

/** All 24 Figure 14 rows as printed in the paper. */
const std::array<Figure14Row, 24> &figure14();

/** Harmonic means the paper reports for Figure 14. */
struct Figure14Means
{
    double cold1to12, warm1to12, cray1s1to12, xmp1to12;
    double cold13to24, warm13to24, cray1s13to24, xmp13to24;
    double cold1to24, warm1to24, cray1s1to24, xmp1to24;
};

const Figure14Means &figure14Means();

/** One Figure 10 latency row (nanoseconds). */
struct LatencyRow
{
    const char *operation;
    double fpuNs;
    double xmpNs;
};

/** The Figure 10 latency table. */
const std::array<LatencyRow, 3> &figure10();

/** §3.3 Linpack numbers (MFLOPS). */
struct LinpackPaper
{
    double multititanScalar; // 4.1
    double multititanVector; // 6.1
    double cray1sCodedBlas;  // ~4x the MultiTitan vector number
    double crayXmp;          // ~8x
};

const LinpackPaper &linpackPaper();

} // namespace mtfpu::baseline

#endif // MTFPU_BASELINE_PUBLISHED_HH
