#include "baseline/hockney.hh"

#include "common/log.hh"

namespace mtfpu::baseline
{

double
hockneyRate(const HockneyParams &params, double n)
{
    if (n <= 0)
        return 0.0;
    return params.rInfMflops * n / (n + params.nHalf);
}

double
hockneyTimeUs(const HockneyParams &params, double n)
{
    return (n + params.nHalf) / params.rInfMflops;
}

HockneyFit
fitHockney(const std::vector<std::pair<double, double>> &samples)
{
    if (samples.size() < 2)
        fatal("fitHockney: need at least two samples");
    // Least squares: cycles = t0 + tau*n.
    double sn = 0, sc = 0, snn = 0, snc = 0;
    const double m = static_cast<double>(samples.size());
    for (const auto &[n, c] : samples) {
        sn += n;
        sc += c;
        snn += n * n;
        snc += n * c;
    }
    const double denom = m * snn - sn * sn;
    if (denom == 0)
        fatal("fitHockney: degenerate samples");
    const double tau = (m * snc - sn * sc) / denom;
    const double t0 = (sc - tau * sn) / m;
    if (tau <= 0)
        fatal("fitHockney: non-positive asymptotic time per result");
    return HockneyFit{t0 / tau, 1.0 / tau};
}

const std::vector<HockneyParams> &
classicalMachines()
{
    // r_inf values are representative DP add/multiply pipelines; the
    // n1/2 values are the ones the paper quotes in §2.2.1.
    static const std::vector<HockneyParams> machines = {
        {"MultiTitan", 25.0, 4.0},
        {"Cray-1", 80.0, 15.0},
        {"CDC Cyber 205", 100.0, 100.0},
        {"ICL DAP", 16.0, 2048.0},
    };
    return machines;
}

} // namespace mtfpu::baseline
