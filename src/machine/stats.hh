/**
 * @file
 * Run statistics collected by the Machine, plus the MFLOPS accounting
 * used to regenerate the paper's tables (Livermore convention: the
 * kernel declares its useful FLOP count; the machine supplies time).
 */

#ifndef MTFPU_MACHINE_STATS_HH
#define MTFPU_MACHINE_STATS_HH

#include <cstdint>
#include <string>

#include "common/bytestream.hh"
#include "fpu/fpu.hh"
#include "memory/direct_mapped_cache.hh"

namespace mtfpu::machine
{

/** How a run ended. */
enum class RunStatus : uint8_t
{
    Ok,         // halted and drained normally
    CycleGuard, // maxCycles exceeded; stats are the partial run
    Watchdog,   // wall-clock watchdog expired; stats are partial
    Paused,     // runUntil() stop cycle reached; run() resumes it
};

/**
 * Short stable name of a status
 * ("ok" / "cycle-guard" / "watchdog" / "paused").
 */
const char *runStatusName(RunStatus status);

/** Everything a run produces besides architectural state. */
struct RunStats
{
    /**
     * Outcome tag. A guarded run (CycleGuard/Watchdog) still returns
     * with every counter reflecting the cycles actually simulated, so
     * a triage pass can see how far it got instead of losing the run.
     */
    RunStatus status = RunStatus::Ok;

    /** Index of the last active cycle (paper-figure convention). */
    uint64_t cycles = 0;

    uint64_t instructionsIssued = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t fpLoads = 0;
    uint64_t fpStores = 0;
    uint64_t fpAluTransfers = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;

    /** Cycles lost to lock-step global stalls (cache misses). */
    uint64_t memoryStallCycles = 0;
    /** Cycles the CPU could not issue (structural/data stalls). */
    uint64_t cpuStallCycles = 0;
    /** Cycles in which both a CPU op and an FPU element issued. */
    uint64_t dualIssueCycles = 0;

    fpu::FpuStats fpu{};
    memory::CacheStats dataCache{};
    memory::CacheStats instrBuffer{};
    memory::CacheStats instrCache{};

    /** Counter-exact equality, used by the batch-driver determinism
     *  tests (serial vs. threaded runs must agree bit for bit). */
    bool operator==(const RunStats &) const = default;

    /** Elapsed simulated time for @p cycle_ns per cycle. */
    double
    seconds(double cycle_ns) const
    {
        return static_cast<double>(cycles) * cycle_ns * 1e-9;
    }

    /** MFLOPS given a kernel-declared useful FLOP count. */
    double
    mflops(double flops, double cycle_ns) const
    {
        const double s = seconds(cycle_ns);
        return s > 0.0 ? flops / s * 1e-6 : 0.0;
    }

    /** Multi-line human-readable summary. */
    std::string summary() const;

    /** Serialize every counter (snapshot support). */
    void saveState(ByteWriter &out) const;

    /** Restore counters saved by saveState(). */
    void restoreState(ByteReader &in);
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_STATS_HH
