/**
 * @file
 * The whole-machine cycle model: one MultiTitan processor as in
 * Figure 1 — the CPU, the FPU coprocessor, and the shared memory
 * system — driven in lock step.
 *
 * Issue rules implemented here (paper §2, validated cycle-exactly
 * against Figures 5-8 and 13 in the tests):
 *   - the CPU issues at most one instruction per cycle, in order;
 *   - an FPU ALU instruction transfers into the ALU IR only when the
 *     IR is empty and no element issued this cycle; its first element
 *     issues the same cycle;
 *   - the ALU IR re-issues one element per cycle, interlocked by the
 *     scoreboard, while the CPU continues issuing loads/stores and
 *     loop overhead (peak two operations per cycle);
 *   - FPU load data is visible to elements issuing the next cycle;
 *     CPU load data is visible two cycles after issue (one delay
 *     slot);
 *   - stores occupy the memory port for two cycles;
 *   - branches and jumps have one (always-executed) delay slot;
 *   - cache misses freeze the whole machine (lock-step stall).
 *
 * Instruction *semantics* (what each operation computes) live in
 * src/exec and are shared with the untimed Interpreter; this class
 * owns only the timing policy. Instrumentation is decoupled through
 * the exec::ExecObserver event stream — tracing, statistics, and
 * lockstep checking all attach via addObserver().
 */

#ifndef MTFPU_MACHINE_MACHINE_HH
#define MTFPU_MACHINE_MACHINE_HH

#include <cstdint>
#include <vector>

#include "assembler/assembler.hh"
#include "cpu/cpu.hh"
#include "exec/observer.hh"
#include "fpu/fpu.hh"
#include "machine/config.hh"
#include "machine/hook.hh"
#include "machine/observers.hh"
#include "machine/stats.hh"
#include "machine/tracer.hh"
#include "memory/memory_system.hh"

namespace mtfpu::machine
{

/** One MultiTitan processor. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig{});

    /** Load a program image; resets architectural state. */
    void loadProgram(assembler::Program program);

    /** Run from the current PC until halt (plus pipeline drain). */
    RunStats run();

    /**
     * Run until the machine would simulate cycle @p stop_cycle, then
     * pause (status RunStatus::Paused) with every pipeline and counter
     * snapshot-consistent: a following run()/runUntil() — or a
     * saveState()/restoreState() round trip — continues bit-identically
     * to an uninterrupted run. Completes normally (status Ok, or a
     * guard status) if the program ends first; the maxCycles guard
     * takes priority over the pause.
     */
    RunStats runUntil(uint64_t stop_cycle);

    /** Cycle the next run()/runUntil() call will simulate first. */
    uint64_t nextCycle() const { return nextCycle_; }

    /**
     * Serialize the complete per-run machine state — architectural
     * (registers, PC, PSW, memory) and microarchitectural (scoreboard,
     * in-flight pipeline entries, cache tags, stall/port bookkeeping,
     * statistics counters). The program image and configuration are
     * NOT included; snapshot::MachineSnapshot carries those.
     */
    void saveState(ByteWriter &out) const;

    /**
     * Restore state saved by saveState(). The same program must
     * already be loaded (restore does not touch the predecoded code)
     * and the configuration must match the saving machine's.
     */
    void restoreState(ByteReader &in);

    /**
     * Reset architectural and statistics state for another run of the
     * same program. Keeping the caches warm models the paper's
     * "run the loops twice" warm-cache methodology.
     */
    void resetForRun(bool flush_caches);

    /**
     * Register an event observer. Observers are notified in
     * registration order; the Machine does not take ownership and the
     * pointer must stay valid until removed (or the Machine dies).
     */
    void addObserver(exec::ExecObserver *observer);

    /** Unregister an observer (no-op if not registered). */
    void removeObserver(exec::ExecObserver *observer);

    /**
     * Convenience wrapper from the pre-observer interface: attach a
     * trace sink (or detach the current one with nullptr). Equivalent
     * to add/removeObserver on the Tracer.
     */
    void attachTracer(Tracer *tracer);

    /**
     * Install the mutating per-cycle hook (nullptr detaches). Unlike
     * observers the hook may change machine state — fault injectors
     * use it to flip register/memory/cache bits at scheduled cycles.
     * The pointer must stay valid while installed; the unhooked fast
     * path costs one pointer test per cycle.
     */
    void setHook(MachineHook *hook) { hook_ = hook; }
    MachineHook *hook() const { return hook_; }

    /**
     * Model an interrupt (paper §2.3.1): from @p cycle, the CPU stops
     * issuing for @p duration cycles (as if vectored to a handler)
     * while the FPU keeps re-issuing vector elements — "vector ALU
     * instructions may continue long after an interrupt". Cleared by
     * resetForRun.
     */
    void
    scheduleInterrupt(uint64_t cycle, uint64_t duration)
    {
        interruptAt_ = cycle;
        interruptLen_ = duration;
    }

    memory::MainMemory &mem() { return memsys_.mem(); }
    memory::MemorySystem &memorySystem() { return memsys_; }
    fpu::Fpu &fpu() { return fpu_; }
    cpu::Cpu &cpu() { return cpu_; }
    const MachineConfig &config() const { return config_; }
    const assembler::Program &program() const { return program_; }

  private:
    /**
     * One predecoded, issue-ready instruction. loadProgram lowers the
     * assembler::Program into this dense form once, so the per-cycle
     * issue path never re-extracts fields, sign-extends immediates,
     * or recomputes fetch addresses:
     *  - imm64: the immediate in operand form — sign-extended to 64
     *    bits for AluImm and load/store displacements, the shifted
     *    constant for Lui;
     *  - target: the resolved pc-relative redirect target (Branch,
     *    J/Jal);
     *  - link: the jal/jalr link value (the address past the delay
     *    slot);
     *  - fetchAddr: the instruction's byte fetch address (pc * 4).
     */
    struct IssueSlot
    {
        isa::Major major;
        isa::AluFunc func;
        isa::BranchCond cond;
        isa::JumpKind jkind;
        uint8_t rd, rs1, rs2, fr;
        uint64_t imm64;
        uint32_t target;
        uint32_t link;
        uint64_t fetchAddr;
        isa::FpuAluInstr fp;
        const isa::Instr *raw; // original instruction (observer events)
    };

    /** Lower program_ into the predecoded issue form. */
    void predecode();

    /** Attempt one CPU instruction issue; true if something issued. */
    bool tryCpuIssue(uint64_t cycle);

    /**
     * Advance PC after an issue. @p redirect_pending is whether a
     * taken branch was already outstanding when this instruction
     * (its delay slot) issued — only then does the redirect fire.
     */
    void finishIssue(bool redirect_pending);

    /** Record a CPU stall cycle and return false (issue helper). */
    bool stallCpu(uint64_t cycle);

    /** Handle an unissued-element race per the configured policy. */
    bool handleHazard(uint64_t cycle, unsigned reg, bool include_sources);

    // Event fan-out: the built-in stats collector first, then every
    // registered observer in order.
    void notifyCycle(uint64_t cycle);
    void notifyIssue(const exec::IssueEvent &event);
    void notifyElement(const exec::ElementEvent &event);
    void notifyMemAccess(const exec::MemAccessEvent &event);
    void notifyRetire(const exec::RetireEvent &event);
    void notifyStall(const exec::StallEvent &event);
    void notifyRunEnd(uint64_t cycles);

    /** Emit an ElementEvent for a just-issued FPU element. */
    void emitElement(uint64_t cycle, const fpu::ElementIssue &element);

    MachineConfig config_;
    memory::MemorySystem memsys_;
    fpu::Fpu fpu_;
    cpu::Cpu cpu_;
    assembler::Program program_;
    std::vector<IssueSlot> code_; // predecoded program_ image
    /** The run loop body; catches SimError to stamp its context.
     *  Pauses before simulating @p stop_cycle (UINT64_MAX = never). */
    RunStats runLoop(uint64_t stop_cycle);

    /** Fill @p err's unknown context fields (cycle/pc/instr). */
    void stampErrContext(SimError &err, uint64_t cycle) const;

    /** Finalize stats for a run that ended at @p cycle. */
    RunStats finishRun(uint64_t cycle, RunStatus status);

    StatsCollector collector_;
    std::vector<exec::ExecObserver *> observers_;
    bool hasObservers_ = false; // cached !observers_.empty()
    Tracer *tracer_ = nullptr;  // attachTracer bookkeeping only
    MachineHook *hook_ = nullptr;

    // Per-run microarchitectural state.
    uint64_t memPortFreeAt_ = 0;
    int64_t fetchedPc_ = -1;
    uint64_t globalStall_ = 0;
    uint64_t interruptAt_ = UINT64_MAX;
    uint64_t interruptLen_ = 0;
    uint64_t nextCycle_ = 0; // where the next run()/runUntil() resumes
    RunStats stats_;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_MACHINE_HH
