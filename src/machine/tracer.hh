/**
 * @file
 * Cycle-by-cycle trace collection and the timing-diagram renderer
 * used to regenerate the paper's Figure 5-8 pipeline diagrams.
 *
 * The Tracer is an ExecObserver: it subscribes to the Machine's event
 * stream (Machine::addObserver / the attachTracer convenience) rather
 * than being wired into the pipeline, so tracing composes freely with
 * the other observers (stats collection, lockstep checking).
 */

#ifndef MTFPU_MACHINE_TRACER_HH
#define MTFPU_MACHINE_TRACER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/observer.hh"

namespace mtfpu::machine
{

/** Kinds of trace events. */
enum class TraceKind
{
    CpuIssue,    // a CPU instruction issued
    FpTransfer,  // an FPU ALU instruction entered the ALU IR
    FpElement,   // a vector element issued (text shows the element)
    FpWriteback, // an element's result was written back
    FpLoadData,  // FPU load data reached the register file
    GlobalStall, // lock-step stall began (cache miss)
};

/** One event. */
struct TraceEvent
{
    uint64_t cycle;
    TraceKind kind;
    std::string text;
    uint64_t extra = 0; // e.g. stall length, completion cycle
};

/** Event sink; attach to a Machine to record a run. */
class Tracer : public exec::ExecObserver
{
  public:
    void
    record(uint64_t cycle, TraceKind kind, std::string text,
           uint64_t extra = 0)
    {
        events_.push_back(TraceEvent{cycle, kind, std::move(text), extra});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    void clear() { events_.clear(); }

    // --- ExecObserver hooks -------------------------------------------

    void onIssue(const exec::IssueEvent &event) override;
    void onElement(const exec::ElementEvent &event) override;
    void onMemAccess(const exec::MemAccessEvent &event) override;

    /**
     * Render a Figure 5-8 style timing diagram: one row per issued
     * FPU element, columns are cycles; 'T' marks the CPU transfer
     * cycle of the owning instruction, '=' spans issue to writeback.
     */
    std::string renderTimeline() const;

    /** Render a flat cycle-ordered event listing. */
    std::string renderLog() const;

  private:
    std::vector<TraceEvent> events_;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_TRACER_HH
