#include "machine/result_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <signal.h>
#include <system_error>
#include <thread>
#include <unistd.h>

#include "common/log.hh"

namespace mtfpu::machine
{

namespace
{

constexpr char kMagic[4] = {'M', 'T', 'R', 'C'};

std::string
hashName(uint64_t hash)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "rc-%016llx.res",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** Read a whole file; empty optional on any IO failure. */
std::optional<std::vector<uint8_t>>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::vector<uint8_t> data;
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.insert(data.end(), buf, buf + n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        return std::nullopt;
    return data;
}

} // anonymous namespace

DirLock::DirLock(const std::string &dir, const std::string &name)
{
    std::filesystem::create_directories(dir);
    path_ = dir + "/" + name;
    // Two takeover attempts at most: after one stale unlink, a second
    // EEXIST means a live competitor won the re-create race — defer
    // to it rather than looping on unlink forever.
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd =
            ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            const std::string pid = std::to_string(::getpid()) + "\n";
            ssize_t put;
            do {
                put = ::write(fd, pid.data(), pid.size());
            } while (put < 0 && errno == EINTR);
            ::close(fd);
            held_ = true;
            return;
        }
        if (errno != EEXIST)
            fatal(ErrCode::Io, "cannot create lock file " + path_ + ": " +
                                   std::strerror(errno));

        // Someone holds it. A readable pid that no longer exists is a
        // crashed owner; take the lock over. An unreadable/garbled
        // file is treated the same — it cannot name a live holder.
        long holder = 0;
        if (std::FILE *f = std::fopen(path_.c_str(), "r")) {
            if (std::fscanf(f, "%ld", &holder) != 1)
                holder = 0;
            std::fclose(f);
        }
        if (holder > 0 && holder != static_cast<long>(::getpid()) &&
            (::kill(static_cast<pid_t>(holder), 0) == 0 ||
             errno == EPERM)) {
            fatal(ErrCode::Io,
                  "directory " + dir + " is locked by live process " +
                      std::to_string(holder) + " (" + path_ + ")");
        }
        if (holder == static_cast<long>(::getpid()))
            fatal(ErrCode::Io, "directory " + dir +
                                   " is already locked by this process");
        warn("taking over stale lock " + path_ + " (owner " +
             std::to_string(holder) + " is gone)");
        ::unlink(path_.c_str());
    }
    fatal(ErrCode::Io,
          "lost the lock takeover race on " + path_ + ", giving up");
}

DirLock::~DirLock()
{
    if (held_)
        ::unlink(path_.c_str());
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

bool
ResultCache::cacheable(const RunStats &stats)
{
    return stats.status == RunStatus::Ok ||
           stats.status == RunStatus::CycleGuard;
}

std::string
ResultCache::fileName(const SimJob &job)
{
    return hashName(jobContentHash(job));
}

std::optional<RunStats>
ResultCache::lookup(const SimJob &job)
{
    if (!isPureJob(job)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    const std::string path = dir_ + "/" + fileName(job);
    const std::optional<std::vector<uint8_t>> data = readAll(path);
    if (!data) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    // Decode defensively: any structural defect — bad magic, version
    // drift, truncation, CRC mismatch, content mismatch — is a miss.
    // The entry is removed so the post-recompute store starts clean.
    try {
        const std::vector<uint8_t> &bytes = *data;
        if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t))
            throw SimError(ErrCode::BadSnapshot, "result cache: truncated");
        const uint32_t stored_crc =
            ByteReader(bytes.data() + bytes.size() - sizeof(uint32_t),
                       sizeof(uint32_t))
                .u32();
        const uint32_t computed =
            crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
        if (stored_crc != computed)
            throw SimError(ErrCode::BadSnapshot, "result cache: bad CRC");

        ByteReader in(bytes.data(), bytes.size() - sizeof(uint32_t));
        char magic[4];
        for (char &c : magic)
            c = static_cast<char>(in.u8());
        if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
            throw SimError(ErrCode::BadSnapshot, "result cache: bad magic");
        if (in.u32() != kFormatVersion)
            throw SimError(ErrCode::BadSnapshot,
                           "result cache: unknown version");
        const uint64_t hash = in.u64();
        if (hash != jobContentHash(job))
            throw SimError(ErrCode::BadSnapshot,
                           "result cache: hash mismatch");
        const std::vector<uint8_t> content = in.bytes();
        if (content != jobContentBlob(job)) {
            // A real 64-bit collision: another job owns this entry.
            // Do not delete it — just miss.
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        const std::vector<uint8_t> statsBlob = in.bytes();
        if (!in.atEnd())
            throw SimError(ErrCode::BadSnapshot,
                           "result cache: trailing bytes");
        ByteReader statsIn(statsBlob);
        RunStats stats;
        stats.restoreState(statsIn);
        if (!cacheable(stats))
            throw SimError(ErrCode::BadSnapshot,
                           "result cache: non-cacheable status");
        hits_.fetch_add(1, std::memory_order_relaxed);
        return stats;
    } catch (const SimError &err) {
        warn("result cache entry " + path + " unusable (" + err.what() +
             "), recomputing");
        std::remove(path.c_str());
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
}

void
ResultCache::store(const SimJob &job, const RunStats &stats)
{
    if (!isPureJob(job) || !cacheable(stats))
        return;
    try {
        std::filesystem::create_directories(dir_);
        ByteWriter out;
        for (char c : kMagic)
            out.u8(static_cast<uint8_t>(c));
        out.u32(kFormatVersion);
        out.u64(jobContentHash(job));
        const std::vector<uint8_t> content = jobContentBlob(job);
        out.bytes(content.data(), content.size());
        ByteWriter statsOut;
        stats.saveState(statsOut);
        out.bytes(statsOut.data().data(), statsOut.size());
        out.u32(crc32(out.data().data(), out.size()));

        // Unique temp name per writer: concurrent stores of the same
        // hash never scribble on each other's partial file, and the
        // final rename is atomic within the directory.
        const std::string path = dir_ + "/" + fileName(job);
        const std::string tmp =
            path + ".tmp." +
            std::to_string(std::hash<std::thread::id>{}(
                std::this_thread::get_id()));
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            warn("result cache: cannot write " + tmp);
            return;
        }
        const size_t wrote =
            std::fwrite(out.data().data(), 1, out.size(), f);
        const bool ok = wrote == out.size() && std::fclose(f) == 0;
        if (!ok) {
            std::remove(tmp.c_str());
            warn("result cache: short write of " + tmp);
            return;
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            std::remove(tmp.c_str());
            warn("result cache: rename failed: " + ec.message());
            return;
        }
        stores_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception &err) {
        warn(std::string("result cache store failed: ") + err.what());
    }
}

ResultCache::DiskStats
ResultCache::scan() const
{
    DiskStats stats;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("rc-", 0) == 0 &&
            name.size() > 4 && name.substr(name.size() - 4) == ".res") {
            ++stats.entries;
            std::error_code sec;
            const uint64_t sz = entry.file_size(sec);
            if (!sec)
                stats.bytes += sz;
        }
    }
    return stats;
}

uint64_t
ResultCache::clear()
{
    uint64_t removed = 0;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("rc-", 0) == 0 &&
            name.size() > 4 && name.substr(name.size() - 4) == ".res") {
            std::error_code rec;
            if (std::filesystem::remove(entry.path(), rec) && !rec)
                ++removed;
        }
    }
    return removed;
}

} // namespace mtfpu::machine
