#include "machine/stats.hh"

#include <cstdio>

namespace mtfpu::machine
{

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok: return "ok";
      case RunStatus::CycleGuard: return "cycle-guard";
      case RunStatus::Watchdog: return "watchdog";
    }
    return "unknown";
}

std::string
RunStats::summary() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "status:            %s\n"
        "cycles:            %llu\n"
        "instructions:      %llu\n"
        "  loads/stores:    %llu / %llu (fp: %llu / %llu)\n"
        "  fp alu transfers:%llu (vector %llu, scalar %llu)\n"
        "  branches:        %llu (taken %llu)\n"
        "fp elements:       %llu (squashed %llu)\n"
        "stalls:            memory %llu, cpu %llu\n"
        "dual-issue cycles: %llu\n"
        "dcache:            %llu hits / %llu misses\n"
        "ibuffer:           %llu hits / %llu misses\n",
        runStatusName(status),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(instructionsIssued),
        static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(fpLoads),
        static_cast<unsigned long long>(fpStores),
        static_cast<unsigned long long>(fpAluTransfers),
        static_cast<unsigned long long>(fpu.vectorInstructions),
        static_cast<unsigned long long>(fpu.scalarInstructions),
        static_cast<unsigned long long>(branches),
        static_cast<unsigned long long>(takenBranches),
        static_cast<unsigned long long>(fpu.elementsIssued),
        static_cast<unsigned long long>(fpu.squashedElements),
        static_cast<unsigned long long>(memoryStallCycles),
        static_cast<unsigned long long>(cpuStallCycles),
        static_cast<unsigned long long>(dualIssueCycles),
        static_cast<unsigned long long>(dataCache.hits),
        static_cast<unsigned long long>(dataCache.misses),
        static_cast<unsigned long long>(instrBuffer.hits),
        static_cast<unsigned long long>(instrBuffer.misses));
    return buf;
}

} // namespace mtfpu::machine
