#include "machine/stats.hh"

#include <cstdio>

namespace mtfpu::machine
{

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok: return "ok";
      case RunStatus::CycleGuard: return "cycle-guard";
      case RunStatus::Watchdog: return "watchdog";
      case RunStatus::Paused: return "paused";
    }
    return "unknown";
}

std::string
RunStats::summary() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "status:            %s\n"
        "cycles:            %llu\n"
        "instructions:      %llu\n"
        "  loads/stores:    %llu / %llu (fp: %llu / %llu)\n"
        "  fp alu transfers:%llu (vector %llu, scalar %llu)\n"
        "  branches:        %llu (taken %llu)\n"
        "fp elements:       %llu (squashed %llu)\n"
        "stalls:            memory %llu, cpu %llu\n"
        "dual-issue cycles: %llu\n"
        "dcache:            %llu hits / %llu misses\n"
        "ibuffer:           %llu hits / %llu misses\n",
        runStatusName(status),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(instructionsIssued),
        static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(fpLoads),
        static_cast<unsigned long long>(fpStores),
        static_cast<unsigned long long>(fpAluTransfers),
        static_cast<unsigned long long>(fpu.vectorInstructions),
        static_cast<unsigned long long>(fpu.scalarInstructions),
        static_cast<unsigned long long>(branches),
        static_cast<unsigned long long>(takenBranches),
        static_cast<unsigned long long>(fpu.elementsIssued),
        static_cast<unsigned long long>(fpu.squashedElements),
        static_cast<unsigned long long>(memoryStallCycles),
        static_cast<unsigned long long>(cpuStallCycles),
        static_cast<unsigned long long>(dualIssueCycles),
        static_cast<unsigned long long>(dataCache.hits),
        static_cast<unsigned long long>(dataCache.misses),
        static_cast<unsigned long long>(instrBuffer.hits),
        static_cast<unsigned long long>(instrBuffer.misses));
    return buf;
}

void
RunStats::saveState(ByteWriter &out) const
{
    out.u8(static_cast<uint8_t>(status));
    out.u64(cycles);
    out.u64(instructionsIssued);
    out.u64(loads);
    out.u64(stores);
    out.u64(fpLoads);
    out.u64(fpStores);
    out.u64(fpAluTransfers);
    out.u64(branches);
    out.u64(takenBranches);
    out.u64(memoryStallCycles);
    out.u64(cpuStallCycles);
    out.u64(dualIssueCycles);
    out.u64(fpu.elementsIssued);
    out.u64(fpu.vectorInstructions);
    out.u64(fpu.scalarInstructions);
    out.u64(fpu.sourceStallCycles);
    out.u64(fpu.destStallCycles);
    out.u64(fpu.squashedElements);
    for (const uint64_t c : fpu.opCounts)
        out.u64(c);
    for (const memory::CacheStats *cs :
         {&dataCache, &instrBuffer, &instrCache}) {
        out.u64(cs->hits);
        out.u64(cs->misses);
    }
}

void
RunStats::restoreState(ByteReader &in)
{
    status = static_cast<RunStatus>(in.u8());
    cycles = in.u64();
    instructionsIssued = in.u64();
    loads = in.u64();
    stores = in.u64();
    fpLoads = in.u64();
    fpStores = in.u64();
    fpAluTransfers = in.u64();
    branches = in.u64();
    takenBranches = in.u64();
    memoryStallCycles = in.u64();
    cpuStallCycles = in.u64();
    dualIssueCycles = in.u64();
    fpu.elementsIssued = in.u64();
    fpu.vectorInstructions = in.u64();
    fpu.scalarInstructions = in.u64();
    fpu.sourceStallCycles = in.u64();
    fpu.destStallCycles = in.u64();
    fpu.squashedElements = in.u64();
    for (uint64_t &c : fpu.opCounts)
        c = in.u64();
    for (memory::CacheStats *cs :
         {&dataCache, &instrBuffer, &instrCache}) {
        cs->hits = in.u64();
        cs->misses = in.u64();
    }
}

} // namespace mtfpu::machine
