/**
 * @file
 * A purely functional (untimed) interpreter of the ISA. It executes
 * instructions strictly in program order — vector ALU instructions
 * expand element by element — with the same architectural semantics
 * as the cycle model (branch/jump delay slots included). Both engines
 * delegate instruction semantics to src/exec, so they cannot drift;
 * the interpreter serves as the oracle for the semantics-vs-timing
 * property tests and for the LockstepChecker observer that
 * shadow-executes it under the cycle model.
 */

#ifndef MTFPU_MACHINE_INTERPRETER_HH
#define MTFPU_MACHINE_INTERPRETER_HH

#include <array>
#include <cstdint>

#include "assembler/assembler.hh"
#include "memory/main_memory.hh"
#include "softfp/backend.hh"

namespace mtfpu::machine
{

/**
 * Deliberate semantics bugs for mutation-testing the differential
 * oracle (DESIGN.md §10): the fuzzer's acceptance property is that a
 * lockstep campaign against a mutated shadow finds and minimizes the
 * injected bug. Mutations apply to FPU ALU execution only and survive
 * loadProgram(), so a checker re-arming between runs keeps the bug.
 */
enum class SemanticsMutation : uint8_t
{
    None,            // faithful semantics (the default)
    FlipSra,         // invert the Ra stride bit (when still in range)
    FlipSrb,         // invert the Rb stride bit (when still in range)
    DropLastElement, // skip the final element of every vector
    SwapAddSub,      // execute fadd as fsub and vice versa
};

/** Short stable name, e.g. "flip-sra". */
const char *mutationName(SemanticsMutation mutation);

/** Parse a mutationName(); fatal(ErrCode::BadOperand) on garbage. */
SemanticsMutation mutationFromName(const std::string &name);

/** The untimed reference interpreter. */
class Interpreter
{
  public:
    explicit Interpreter(size_t mem_bytes = 4u << 20);

    /**
     * Select the softfp backend for FPU elements (default Soft). Both
     * backends are bit-identical; a lockstep shadow mirrors its
     * Machine's choice so the comparison stays apples to apples.
     */
    void setBackend(softfp::Backend backend) { backend_ = backend; }
    softfp::Backend backend() const { return backend_; }

    /** Install a deliberate semantics bug (mutation testing). */
    void setMutation(SemanticsMutation mutation) { mutation_ = mutation; }
    SemanticsMutation mutation() const { return mutation_; }

    /** Load a program and reset registers (memory is preserved). */
    void loadProgram(assembler::Program program);

    /**
     * Run until halt; fatal() after @p max_steps instructions (guards
     * against runaway programs in randomized tests).
     */
    void run(uint64_t max_steps = 100'000'000);

    /**
     * Execute exactly one instruction (public so a lockstep driver
     * can single-step in time with the cycle model's issue events).
     * No-op once halted.
     */
    void step();

    memory::MainMemory &mem() { return mem_; }
    const memory::MainMemory &mem() const { return mem_; }
    const assembler::Program &program() const { return program_; }
    uint64_t intReg(unsigned r) const { return r == 0 ? 0 : iregs_[r]; }
    uint64_t fpReg(unsigned r) const { return fregs_[r]; }

    /** Preload register state (e.g. lockstep arming from a Machine). */
    void setIntReg(unsigned r, uint64_t v)
    {
        if (r != 0)
            iregs_[r] = v;
    }
    void setFpReg(unsigned r, uint64_t v) { fregs_[r] = v; }

    double fpRegDouble(unsigned r) const;
    uint32_t pc() const { return pc_; }
    bool halted() const { return halted_; }

    /** Count of FPU ALU elements executed (for cross-checking). */
    uint64_t fpElements() const { return fpElements_; }

    /** Serialize functional state (registers, PC, memory, counters).
     *  The program is NOT included; callers reload it separately. */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(); the same program must
     *  already be loaded. */
    void restoreState(ByteReader &in);

  private:
    assembler::Program program_;
    memory::MainMemory mem_;
    std::array<uint64_t, isa::kNumIntRegs> iregs_{};
    std::array<uint64_t, isa::kNumFpuRegs> fregs_{};
    uint32_t pc_ = 0;
    bool halted_ = false;
    bool redirectPending_ = false;
    uint32_t redirectTarget_ = 0;
    uint64_t fpElements_ = 0;
    softfp::Backend backend_ = softfp::Backend::Soft;
    SemanticsMutation mutation_ = SemanticsMutation::None;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_INTERPRETER_HH
