/**
 * @file
 * The batch/service job description layer, split out of the SimDriver
 * (which keeps only scheduling policy). A SimJob names everything one
 * independent simulation needs; the driver, the checkpointing path,
 * the on-disk result cache, and the simulation service all consume
 * this one description.
 *
 * Purity: a job whose behavior is fully captured by declarative data
 * (program code, memInit, regInit, config) is *pure* — two pure jobs
 * with identical content must produce identical RunStats, which is
 * what memoization, checkpoint resume, and the persistent result
 * cache all rely on. The setup/body/hookFactory closures are the
 * explicit escape hatch for in-process-only jobs: a std::function is
 * not content-hashable, so a closure-carrying job never memoizes,
 * never checkpoints, and never hits the result cache. Prefer the
 * declarative memInit/regInit fields whenever a closure would only
 * write memory words or registers.
 *
 * Content identity: jobContentHash() folds every behavior-affecting
 * field into a 64-bit FNV-1a hash (collisions are harmless — callers
 * confirm with sameJobContent() or the serialized jobContentBlob()
 * before sharing results).
 */

#ifndef MTFPU_MACHINE_SIM_JOB_HH
#define MTFPU_MACHINE_SIM_JOB_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.hh"
#include "common/bytestream.hh"
#include "machine/config.hh"
#include "machine/hook.hh"
#include "machine/machine.hh"
#include "machine/stats.hh"

namespace mtfpu::machine
{

/** One independent simulation. */
struct SimJob
{
    /** Identifier carried through to the result (table row, test name). */
    std::string name;

    /** Program image to load. */
    assembler::Program program;

    /** Machine configuration for this job. */
    MachineConfig config{};

    /**
     * Declarative initial memory image: (byte address, 64-bit word)
     * pairs written after loadProgram and before setup. Prefer this
     * over a setup closure for plain data initialization — it keeps
     * the job pure, and therefore memoizable.
     */
    std::vector<std::pair<uint64_t, uint64_t>> memInit;

    /**
     * Declarative CPU register initialization: (register, value)
     * pairs written after memInit and before setup. Absorbs the most
     * common setup-closure use (seeding pointer/count registers), so
     * jobs that only need register values stay pure.
     */
    std::vector<std::pair<unsigned, uint64_t>> cpuRegInit;

    /** Declarative FPU register initialization (raw 64-bit images). */
    std::vector<std::pair<unsigned, uint64_t>> fpuRegInit;

    /**
     * Optional pre-run hook, called after loadProgram, memInit, and
     * regInit (observer attachment, exotic state). Must only touch
     * the given Machine — it runs on a worker thread. Disqualifies
     * the job from memoization.
     */
    std::function<void(Machine &)> setup;

    /**
     * Optional run body replacing the default `return m.run()` —
     * e.g. cold+warm double runs or interrupt scheduling. Same
     * threading rules as setup; also disqualifies memoization.
     */
    std::function<RunStats(Machine &)> body;

    /**
     * Optional per-cycle mutating hook factory (fault injection).
     * Called on the worker thread after setup and before the run; the
     * returned hook is installed with Machine::setHook and kept alive
     * for the duration of the job. Disqualifies memoization — and,
     * because the hook mutates state, also marks attempts as
     * non-deterministic for retry purposes unless faultExpected says
     * otherwise. Use faults::attachPlan() to populate this from a
     * FaultPlan.
     */
    std::function<std::shared_ptr<MachineHook>(Machine &)> hookFactory;

    /**
     * This job deliberately injects faults and is *expected* to fail:
     * a failure is a normal campaign outcome — single attempt, no
     * retry, no quarantine, no crash-report artifact.
     */
    bool faultExpected = false;
};

/** Outcome of one job. */
struct SimJobResult
{
    std::string name;
    RunStats stats{};
    bool ok = false;

    /**
     * Run outcome tag. Mirrors stats.status; a guarded run
     * (CycleGuard/Watchdog) reports ok == false with its partial
     * stats preserved here.
     */
    RunStatus status = RunStatus::Ok;

    /** Simulation attempts consumed (2 = failed once, retried). */
    unsigned attempts = 0;

    /**
     * A deterministic (non-faultExpected) job failed twice in a row:
     * the failure reproduces and needs human triage. A crash report
     * was written if a report directory is configured.
     */
    bool quarantined = false;

    /** Served from the persistent result cache without simulating. */
    bool fromCache = false;

    std::string error;     // error message when !ok
    std::string errorCode; // taxonomy name, e.g. "hazard-violation"
    std::string errorJson; // SimError::to_json() when !ok
};

/** Memoizable: carries no setup/body/hook closure. */
inline bool
isPureJob(const SimJob &job)
{
    return !job.setup && !job.body && !job.hookFactory;
}

/**
 * Content hash of everything that can influence a pure job's
 * RunStats: the encoded instruction stream, the declarative memory
 * and register images, and every MachineConfig field. Names are
 * excluded — they do not affect stats.
 */
uint64_t jobContentHash(const SimJob &job);

/** Exact content equality (the collision guard behind the hash). */
bool sameJobContent(const SimJob &a, const SimJob &b);

/**
 * Canonical serialization of a pure job's content (program code,
 * memInit, regInit, config) — the byte-exact identity the on-disk
 * result cache stores next to each entry so a hash collision can
 * never return another job's stats.
 */
std::vector<uint8_t> jobContentBlob(const SimJob &job);

/**
 * Apply the declarative initial image to a freshly loaded machine:
 * memInit words, then CPU registers, then FPU registers. Shared by
 * the driver's attempt path and the crash-report snapshot writer.
 */
void applyJobInit(const SimJob &job, Machine &machine);

/**
 * Fill the error fields of a result whose run ended on a guard
 * (CycleGuard/Watchdog). Shared by the driver's attempt path, its
 * result-cache hit path, and the service's worker-pool cache path, so
 * a cached or relayed guard outcome carries the same structured error
 * a fresh simulation would.
 */
void fillGuardError(SimJobResult &result);

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_SIM_JOB_HH
