/**
 * @file
 * Whole-machine configuration. Defaults reproduce the paper's
 * MultiTitan: 40 ns cycle, 3-cycle FPU latency, 2-cycle stores,
 * load/store issue overlapped with vector element issue, and the
 * Figure-1 memory hierarchy. The non-default values exist for the
 * ablation benches called out in DESIGN.md.
 */

#ifndef MTFPU_MACHINE_CONFIG_HH
#define MTFPU_MACHINE_CONFIG_HH

#include <cstdint>

#include "memory/memory_system.hh"
#include "softfp/backend.hh"

namespace mtfpu::machine
{

/**
 * What to do when a load/store/mvfc races with a not-yet-issued
 * element of the occupying vector instruction (paper §2.3.2 — the
 * MultiTitan leaves this to the compiler).
 */
enum class HazardPolicy
{
    Fatal,  // flag it as a code-generation bug (default; catches errors)
    Stall,  // interlock conservatively (Ardent-Titan-style ablation)
    Ignore, // true MultiTitan hardware behavior (races corrupt data)
};

/** Machine configuration. */
struct MachineConfig
{
    /** FPU functional-unit latency in cycles (3 in the paper). */
    unsigned fpuLatency = 3;

    /** Cycle time in nanoseconds (40 ns = 25 MHz). */
    double cycleNs = 40.0;

    /** Cycles a store occupies the memory port (2 in the paper). */
    unsigned storeCycles = 2;

    /**
     * Allow FPU loads/stores (and CPU instructions generally) to
     * issue while the ALU IR is re-issuing vector elements. Turning
     * this off is the "no dual issue" ablation.
     */
    bool overlapWithVector = true;

    /** Race handling for unissued vector elements. */
    HazardPolicy hazardPolicy = HazardPolicy::Fatal;

    /**
     * Which softfp backend executes FPU ALU elements. Both produce
     * bit-identical results and flags (asserted by the backend
     * cross-check tests); `HostFast` is several times faster on the
     * IEEE-exact units and is the default.
     */
    softfp::Backend fpBackend = softfp::Backend::HostFast;

    /** Memory hierarchy configuration. */
    memory::MemoryConfig memory{};

    /**
     * Runaway-simulation guard: the run returns partial RunStats
     * tagged RunStatus::CycleGuard once this many cycles elapse.
     */
    uint64_t maxCycles = 2'000'000'000;

    /**
     * Wall-clock watchdog in milliseconds (0 = disabled). Checked
     * every ~4M simulated cycles; an expired budget ends the run with
     * partial RunStats tagged RunStatus::Watchdog. Catches jobs that
     * stop making progress in ways maxCycles is too coarse for.
     */
    uint64_t watchdogMs = 0;

    /** Field-exact equality (used by the SimDriver job memoizer). */
    bool operator==(const MachineConfig &) const = default;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_CONFIG_HH
