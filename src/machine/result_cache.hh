/**
 * @file
 * Persistent result cache backing the SimDriver's content-hash memo
 * table (DESIGN.md §11). The in-memory memoizer deduplicates pure
 * jobs *within* one batch; this cache extends that identity across
 * batches, across daemon restarts, and across client processes: one
 * file per job content hash, holding the canonical content blob (the
 * collision guard) and the serialized RunStats of a completed run.
 *
 * File discipline — the same rules as ck-*.snap checkpoints:
 *  - writes go to a unique temp file and land with an atomic rename,
 *    so a reader only ever sees a complete old entry or a complete
 *    new one, and concurrent writers of the same hash race benignly
 *    (last rename wins; both wrote identical content);
 *  - a trailing CRC-32 covers every byte before it; torn, truncated,
 *    bit-flipped, or version-drifted entries fail verification, are
 *    treated as a miss, and are rewritten after recompute — never
 *    trusted, never fatal;
 *  - lookup re-verifies the stored content blob byte-for-byte against
 *    the requesting job, so a 64-bit hash collision costs a miss, not
 *    a wrong result.
 *
 * Only deterministic outcomes are stored: RunStatus::Ok always, and
 * CycleGuard (the guard bound is part of the content identity). A
 * Watchdog result depends on host wall-clock speed and is never
 * cached.
 */

#ifndef MTFPU_MACHINE_RESULT_CACHE_HH
#define MTFPU_MACHINE_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "machine/sim_job.hh"

namespace mtfpu::machine
{

/**
 * Advisory single-owner lock on a directory, held as a pid file
 * created with O_EXCL. Two daemons pointed at the same cache or
 * journal directory would silently interleave writes; the lock makes
 * the second one fail loudly at startup instead. A lock file left by
 * a crashed owner (its pid no longer exists) is taken over — crash
 * recovery must not require manual cleanup. Construction acquires or
 * throws SimError(ErrCode::Io) naming the live holder; destruction
 * releases. The lock is advisory: only cooperating DirLock users are
 * excluded.
 */
class DirLock
{
  public:
    /** Acquire `<dir>/<name>` (dir is created if missing). */
    explicit DirLock(const std::string &dir,
                     const std::string &name = "owner.lock");
    ~DirLock();

    DirLock(DirLock &&other) noexcept
        : path_(std::move(other.path_)), held_(other.held_)
    {
        other.held_ = false;
    }
    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;
    DirLock &operator=(DirLock &&) = delete;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    bool held_ = false;
};

/** On-disk result cache; thread-safe, shared by driver and service. */
class ResultCache
{
  public:
    /** Entry format version; bump on any layout change. */
    static constexpr uint32_t kFormatVersion = 1;

    /**
     * @param dir Cache directory (created on first store). One cache
     * instance per directory; multiple processes may share one.
     */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Cached stats for @p job, or nullopt on miss. Pure jobs only —
     * a closure-carrying job always misses (and is never stored).
     * Defective entries are removed so the rewrite starts clean.
     */
    std::optional<RunStats> lookup(const SimJob &job);

    /**
     * Store a finished run. Ignored (with a warn) when the job is not
     * pure or the outcome is not cacheable; IO failures warn and drop
     * the entry — caching must never fail the simulation.
     */
    void store(const SimJob &job, const RunStats &stats);

    /** True if @p stats may be served from cache (Ok or CycleGuard). */
    static bool cacheable(const RunStats &stats);

    /** Entry file name for a job: "rc-<contenthash>.res". */
    static std::string fileName(const SimJob &job);

    /** Process-lifetime counters. */
    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    uint64_t stores() const { return stores_.load(); }

    /** On-disk census (walks the directory). */
    struct DiskStats
    {
        uint64_t entries = 0;
        uint64_t bytes = 0;
    };
    DiskStats scan() const;

    /** Remove every entry; returns the number removed. */
    uint64_t clear();

  private:
    std::string dir_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> stores_{0};
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_RESULT_CACHE_HH
