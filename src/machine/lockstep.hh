/**
 * @file
 * Differential (lockstep) checking of the cycle model against the
 * untimed Interpreter, built on the ExecObserver event stream. The
 * checker shadow-executes every issued instruction in the interpreter
 * and faults the run on the first divergence:
 *
 *   - at every CPU issue event, the interpreter must be about to
 *     execute the same PC (issue order is architectural order on this
 *     machine — one in-order CPU instruction per cycle);
 *   - at run end, the integer register file, the FPU register file,
 *     all of memory, and the executed FPU element count must match
 *     exactly (the Machine drains its pipelines before returning, so
 *     delayed load/retire writes have landed).
 *
 * Mid-run register comparison is deliberately not attempted: the cycle
 * model's load results and FPU retirements become visible cycles after
 * issue, so transient differences against the instantaneous
 * interpreter are correct behavior, not divergence.
 *
 * Not applicable to programs that overflow: the hardware squashes the
 * remainder of an overflowing vector (§2.3.1) while the functional
 * interpreter executes every element, so they legitimately differ.
 */

#ifndef MTFPU_MACHINE_LOCKSTEP_HH
#define MTFPU_MACHINE_LOCKSTEP_HH

#include <cstdint>

#include "exec/observer.hh"
#include "machine/interpreter.hh"
#include "machine/machine.hh"

namespace mtfpu::machine
{

/** Observer that shadow-executes the Interpreter under a Machine. */
class LockstepChecker : public exec::ExecObserver
{
  public:
    /**
     * Bind to @p machine (which must outlive the checker). Attach
     * with machine.addObserver(&checker); the checker snapshots the
     * program and memory image at the first active cycle of each run,
     * so attach before run() and after memory setup.
     */
    explicit LockstepChecker(Machine &machine);

    void onCycle(uint64_t cycle) override;
    void onIssue(const exec::IssueEvent &event) override;
    void onRunEnd(uint64_t cycles) override;

    /** Instructions cross-checked so far in the current run. */
    uint64_t issuesChecked() const { return issues_; }

    /** Completed run verifications (incremented at each clean run end). */
    uint64_t runsVerified() const { return runsVerified_; }

    /** The shadow interpreter (for test introspection). */
    const Interpreter &interpreter() const { return interp_; }

  private:
    /** Snapshot the machine's program and memory into the shadow. */
    void arm();

    /** Full architectural-state comparison; fatal() on divergence. */
    void compareFinalState(uint64_t cycles);

    Machine &machine_;
    Interpreter interp_;
    uint64_t issues_ = 0;
    uint64_t runsVerified_ = 0;
    bool armed_ = false;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_LOCKSTEP_HH
