/**
 * @file
 * Differential (lockstep) checking of the cycle model against the
 * untimed Interpreter, built on the ExecObserver event stream. The
 * checker shadow-executes every issued instruction in the interpreter
 * and faults the run on the first divergence:
 *
 *   - at every CPU issue event, the interpreter must be about to
 *     execute the same PC (issue order is architectural order on this
 *     machine — one in-order CPU instruction per cycle);
 *   - at run end, the integer register file, the FPU register file,
 *     all of memory, and the executed FPU element count must match
 *     exactly (the Machine drains its pipelines before returning, so
 *     delayed load/retire writes have landed).
 *
 * Mid-run register comparison is deliberately not attempted: the cycle
 * model's load results and FPU retirements become visible cycles after
 * issue, so transient differences against the instantaneous
 * interpreter are correct behavior, not divergence.
 *
 * Not applicable to programs that overflow: the hardware squashes the
 * remainder of an overflowing vector (§2.3.1) while the functional
 * interpreter executes every element, so they legitimately differ.
 */

#ifndef MTFPU_MACHINE_LOCKSTEP_HH
#define MTFPU_MACHINE_LOCKSTEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/observer.hh"
#include "machine/interpreter.hh"
#include "machine/machine.hh"

namespace mtfpu::machine
{

/**
 * Structured record of the *first* divergence between the cycle model
 * and the shadow interpreter — the unit of triage for fault campaigns
 * and for debugging genuine model bugs.
 */
struct DivergenceReport
{
    /** One differing piece of architectural state. */
    struct Delta
    {
        std::string what;    // e.g. "r5", "f17", "mem[0x10040]"
        uint64_t machine = 0;
        uint64_t interp = 0;
    };

    /** Cycle count when the divergence was detected. */
    uint64_t cycle = 0;
    /** Instructions cross-checked before the divergence. */
    uint64_t instructions = 0;
    /** Detection site: "issue-pc" (mid-run) or "final-state". */
    std::string where;
    /** Machine/interpreter PCs at an issue-pc divergence. */
    uint64_t machinePc = 0;
    uint64_t interpPc = 0;
    /** Disassembly of the diverging instruction (issue-pc only). */
    std::string disasm;
    /** State deltas (final-state only), capped at kMaxDeltas. */
    std::vector<Delta> deltas;
    /** Deltas seen beyond the cap (0 when the list is complete). */
    uint64_t deltasDropped = 0;

    static constexpr size_t kMaxDeltas = 64;

    /** One-object JSON form for crash reports and campaign logs. */
    std::string to_json() const;
};

/** Observer that shadow-executes the Interpreter under a Machine. */
class LockstepChecker : public exec::ExecObserver
{
  public:
    /**
     * Bind to @p machine (which must outlive the checker). Attach
     * with machine.addObserver(&checker); the checker snapshots the
     * program and memory image at the first active cycle of each run,
     * so attach before run() and after memory setup.
     */
    explicit LockstepChecker(Machine &machine);

    void onCycle(uint64_t cycle) override;
    void onIssue(const exec::IssueEvent &event) override;
    void onRunEnd(uint64_t cycles) override;

    /** Instructions cross-checked so far in the current run. */
    uint64_t issuesChecked() const { return issues_; }

    /** Completed run verifications (incremented at each clean run end). */
    uint64_t runsVerified() const { return runsVerified_; }

    /** The shadow interpreter (for test introspection). */
    const Interpreter &interpreter() const { return interp_; }

    /**
     * Mutable shadow access, used to install a SemanticsMutation
     * before the run — the fuzzer's oracle-validation mode checks
     * that a campaign against a deliberately wrong shadow reports
     * the divergence. Mutating any other shadow state mid-run makes
     * divergence reports meaningless; don't.
     */
    Interpreter &interpreter() { return interp_; }

    /** Whether the current/last run diverged. */
    bool diverged() const { return diverged_; }

    /**
     * The first-divergence report of the last run. Valid only when
     * diverged() — the checker throws SimError(LockstepDivergence)
     * at the point of divergence, so callers read this from the
     * catch site.
     */
    const DivergenceReport &report() const { return report_; }

    /**
     * Serialize the checker's mid-run state (shadow interpreter,
     * armed flag, counters). Paired with the bound Machine's
     * saveState() this makes a paused lockstep run fully resumable —
     * a forked trial restores both sides and continues checking
     * exactly where the prefix run paused.
     */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(); the bound Machine must
     *  have the same program loaded (the shadow reloads it). */
    void restoreState(ByteReader &in);

  private:
    /** Snapshot the machine's program and memory into the shadow. */
    void arm();

    /** Record @p report and throw SimError(LockstepDivergence). */
    [[noreturn]] void diverge(DivergenceReport report);

    /** Full architectural-state comparison; throws on divergence. */
    void compareFinalState(uint64_t cycles);

    Machine &machine_;
    Interpreter interp_;
    uint64_t issues_ = 0;
    uint64_t runsVerified_ = 0;
    bool armed_ = false;
    bool diverged_ = false;
    DivergenceReport report_;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_LOCKSTEP_HH
