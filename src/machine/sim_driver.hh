/**
 * @file
 * Parallel batch-simulation driver. A study (a figure regeneration,
 * an ablation sweep, a kernel suite) is a list of independent
 * (program, configuration) jobs; the driver runs each job on its own
 * fully isolated Machine instance across a worker-thread pool.
 *
 * Determinism: a Machine is a closed system — no shared mutable state
 * exists between jobs (each worker builds its own Machine, memory, and
 * observers), so per-job results are bit-identical regardless of the
 * thread count or scheduling order. The driver test suite asserts
 * RunStats equality between a 1-thread and an N-thread pass.
 *
 * Error containment: a job that fatal()s (bad program, hazard-policy
 * violation, runaway cycle guard) fails alone; its SimJobResult
 * carries the message and the remaining jobs still run.
 */

#ifndef MTFPU_MACHINE_SIM_DRIVER_HH
#define MTFPU_MACHINE_SIM_DRIVER_HH

#include <functional>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "machine/config.hh"
#include "machine/machine.hh"
#include "machine/stats.hh"

namespace mtfpu::machine
{

/** One independent simulation. */
struct SimJob
{
    /** Identifier carried through to the result (table row, test name). */
    std::string name;

    /** Program image to load. */
    assembler::Program program;

    /** Machine configuration for this job. */
    MachineConfig config{};

    /**
     * Optional pre-run hook, called after loadProgram (memory/data
     * initialization, observer attachment). Must only touch the given
     * Machine — it runs on a worker thread.
     */
    std::function<void(Machine &)> setup;

    /**
     * Optional run body replacing the default `return m.run()` —
     * e.g. cold+warm double runs or interrupt scheduling. Same
     * threading rules as setup.
     */
    std::function<RunStats(Machine &)> body;
};

/** Outcome of one job. */
struct SimJobResult
{
    std::string name;
    RunStats stats{};
    bool ok = false;
    std::string error; // fatal() message when !ok
};

/** The batch runner. */
class SimDriver
{
  public:
    /**
     * @param threads Worker count; 0 means hardware_concurrency()
     * (min 1). The pool is capped at the job count per batch.
     */
    explicit SimDriver(unsigned threads = 0);

    /** Effective worker count for a batch of @p jobs jobs. */
    unsigned threadsFor(size_t jobs) const;

    /** Configured worker count (after the 0 → hardware resolution). */
    unsigned threads() const { return threads_; }

    /**
     * Run every job; returns results in job order. Jobs are handed to
     * workers through an atomic cursor, so completion order is
     * arbitrary but the result vector is not.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &jobs) const;

  private:
    /** Run one job on a freshly constructed Machine. */
    static SimJobResult runOne(const SimJob &job);

    unsigned threads_;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_SIM_DRIVER_HH
