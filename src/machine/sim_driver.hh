/**
 * @file
 * Parallel batch-simulation scheduler. The *description* of a job —
 * SimJob, its purity rules, and its content identity — lives in
 * sim_job.hh; this class owns only scheduling policy: the worker
 * pool, in-batch memoization, the retry-once-then-quarantine failure
 * containment, periodic checkpointing, and the persistent result
 * cache hookup. The simulation service (src/service) schedules
 * through the same runJob() entry point the batch path uses, so both
 * layers share one containment policy.
 *
 * Determinism: a Machine is a closed system — no shared mutable state
 * exists between jobs (each worker builds its own Machine, memory, and
 * observers), so per-job results are bit-identical regardless of the
 * thread count or scheduling order. The driver test suite asserts
 * RunStats equality between a 1-thread and an N-thread pass.
 *
 * Memoization: batches frequently repeat the same (program, config)
 * pair — ablation sweeps share a baseline column, figure suites rerun
 * reference rows. Because jobs are closed systems, two *pure* jobs
 * (see sim_job.hh) with identical content must produce identical
 * RunStats, so the driver simulates one and copies the result to the
 * rest. With a ResultCache attached the same identity extends across
 * processes and restarts: a pure job whose content hash has a valid
 * on-disk entry is served without simulating at all.
 *
 * Error containment: a job that fatal()s (bad program, hazard-policy
 * violation, runaway cycle guard) fails alone; its SimJobResult
 * carries the structured SimError and the remaining jobs still run.
 * Failure triage distinguishes *expected* failures (fault-injection
 * jobs, flagged faultExpected) from surprises: a deterministic job
 * that throws is retried once — a Machine is a closed system, so a
 * genuine simulator error reproduces exactly — and a twice-failing
 * job is quarantined and dumped as a crash-report artifact
 * (setCrashReportDir) for offline reproduction.
 */

#ifndef MTFPU_MACHINE_SIM_DRIVER_HH
#define MTFPU_MACHINE_SIM_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "machine/sim_job.hh"

namespace mtfpu::machine
{

class ResultCache;

/** The batch runner. */
class SimDriver
{
  public:
    /**
     * @param threads Worker count; 0 means hardware_concurrency()
     * (min 1). The pool is capped at the job count per batch.
     * @param memoize Deduplicate identical pure jobs (see file
     * comment); pass false to force every job to simulate.
     */
    explicit SimDriver(unsigned threads = 0, bool memoize = true);

    /** Effective worker count for a batch of @p jobs jobs. */
    unsigned threadsFor(size_t jobs) const;

    /** Configured worker count (after the 0 → hardware resolution). */
    unsigned threads() const { return threads_; }

    /** Whether identical pure jobs share one simulation. */
    bool memoize() const { return memoize_; }

    /**
     * Directory for crash-report artifacts (one JSON file per
     * quarantined or guard-failed job: config, program disassembly,
     * cycle of death, structured error). Created on first use; empty
     * (the default) disables artifact writing.
     */
    void setCrashReportDir(std::string dir) { crashReportDir_ = std::move(dir); }
    const std::string &crashReportDir() const { return crashReportDir_; }

    /**
     * Attach a persistent result cache (nullptr detaches). Pure jobs
     * consult it before simulating and store their stats after an Ok
     * or CycleGuard run; closure-carrying jobs bypass it entirely.
     * The cache must outlive the driver; it is thread-safe and may be
     * shared between drivers and the simulation service.
     */
    void setResultCache(ResultCache *cache) { resultCache_ = cache; }
    ResultCache *resultCache() const { return resultCache_; }

    /**
     * Enable periodic checkpointing of pure jobs. Every
     * @p interval_cycles simulated cycles the worker pauses the run
     * and writes an atomic snapshot ck-<contenthash>.snap under
     * @p dir; a later batch containing the same job (identical
     * program, memInit, regInit, and config — the memoization
     * identity) picks the file up and resumes from the last
     * checkpoint, producing bit-identical final RunStats. A stale,
     * torn, or mismatched checkpoint is discarded and the job starts
     * fresh; the file is removed once its job completes. Jobs
     * carrying setup/body/hook closures never checkpoint — a closure
     * cannot be re-applied from a file. Pass an empty dir or 0
     * interval to disable.
     */
    void setCheckpoint(std::string dir, uint64_t interval_cycles)
    {
        checkpointDir_ = std::move(dir);
        checkpointInterval_ = interval_cycles;
    }
    const std::string &checkpointDir() const { return checkpointDir_; }

    /**
     * Per-result callback, fired on the worker thread right after each
     * *simulated* job finishes (memoized duplicates are excluded —
     * they never run). Receives the job's index in the batch and its
     * result; used for incremental journaling (campaign resume). Must
     * be thread-safe: workers invoke it concurrently.
     */
    using ResultCallback = std::function<void(size_t, const SimJobResult &)>;
    void setResultCallback(ResultCallback cb)
    {
        resultCallback_ = std::move(cb);
    }

    /**
     * Run every job; returns results in job order. Unique jobs are
     * handed to workers through an atomic cursor, so completion order
     * is arbitrary but the result vector is not. With memoization on,
     * duplicate pure jobs inherit their representative's stats (under
     * their own name) without simulating.
     *
     * When any job was disqualified from memoization by a closure the
     * batch logs one summary line through the job-tagged sink, so
     * sweep authors notice when a setup closure should have been the
     * declarative memInit/regInit.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &jobs) const;

    /**
     * Run one job under the full scheduling policy — result-cache
     * lookup/store, retry-once-then-quarantine containment, crash
     * reports, checkpointing — on the calling thread. This is the
     * entry point the simulation service schedules through; run()
     * invokes it once per unique job.
     */
    SimJobResult runJob(const SimJob &job) const;

    /**
     * Run exactly one containment-free simulation attempt on the
     * calling thread: no cache, no retry, no quarantine, no crash
     * report — just the machine build, the run, and a structured
     * result. This is the execution primitive an isolated worker
     * process exposes; the supervising pool re-founds the
     * retry-once-then-quarantine policy on top of the process
     * boundary, where it also covers attempts that die by signal.
     */
    SimJobResult runAttempt(const SimJob &job) const;

    /**
     * Memoization partition of a batch: result[i] is the index of the
     * first job identical to jobs[i] (== i for unique or non-pure
     * jobs). Identity is sameJobContent(); names are ignored. Exposed
     * for the driver tests and for callers sizing a batch in advance.
     */
    static std::vector<size_t> uniqueJobs(const std::vector<SimJob> &jobs);

    /**
     * File name (relative to the checkpoint dir) a pure job's
     * checkpoint is stored under: "ck-<contenthash>.snap". Exposed so
     * tests and tooling can seed or inspect a job's checkpoint.
     */
    static std::string checkpointFileName(const SimJob &job);

    /** Memoizable: carries no setup/body/hook closure. */
    static bool isPure(const SimJob &job) { return isPureJob(job); }

  private:
    /** One simulation attempt on a freshly constructed Machine. */
    SimJobResult attemptOne(const SimJob &job) const;

    /**
     * Checkpointed run body for a pure job: resume from the job's
     * checkpoint file if a valid one exists, then run in
     * checkpointInterval_-cycle slices, snapshotting after each pause.
     */
    RunStats runCheckpointed(const SimJob &job, Machine &machine) const;

    /** Containment policy only (no cache): retry/quarantine/report. */
    SimJobResult runOne(const SimJob &job) const;

    /** Write the crash-report artifact for a quarantined job. */
    void writeCrashReport(const SimJob &job,
                          const SimJobResult &result) const;

    unsigned threads_;
    bool memoize_;
    std::string crashReportDir_;
    std::string checkpointDir_;
    uint64_t checkpointInterval_ = 0;
    ResultCallback resultCallback_;
    ResultCache *resultCache_ = nullptr;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_SIM_DRIVER_HH
