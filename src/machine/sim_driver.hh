/**
 * @file
 * Parallel batch-simulation driver. A study (a figure regeneration,
 * an ablation sweep, a kernel suite) is a list of independent
 * (program, configuration) jobs; the driver runs each job on its own
 * fully isolated Machine instance across a worker-thread pool.
 *
 * Determinism: a Machine is a closed system — no shared mutable state
 * exists between jobs (each worker builds its own Machine, memory, and
 * observers), so per-job results are bit-identical regardless of the
 * thread count or scheduling order. The driver test suite asserts
 * RunStats equality between a 1-thread and an N-thread pass.
 *
 * Memoization: batches frequently repeat the same (program, config)
 * pair — ablation sweeps share a baseline column, figure suites rerun
 * reference rows. Because jobs are closed systems, two *pure* jobs
 * (no setup/body hooks) with identical program code, memory image,
 * and configuration must produce identical RunStats, so the driver
 * simulates one and copies the result to the rest. Jobs carrying
 * setup or body closures are never memoized: a std::function's
 * behavior is not content-hashable. The declarative memInit field
 * exists precisely so data-initialized jobs can stay pure.
 *
 * Error containment: a job that fatal()s (bad program, hazard-policy
 * violation, runaway cycle guard) fails alone; its SimJobResult
 * carries the structured SimError and the remaining jobs still run.
 * Failure triage distinguishes *expected* failures (fault-injection
 * jobs, flagged faultExpected) from surprises: a deterministic job
 * that throws is retried once — a Machine is a closed system, so a
 * genuine simulator error reproduces exactly — and a twice-failing
 * job is quarantined and dumped as a crash-report artifact
 * (setCrashReportDir) for offline reproduction.
 */

#ifndef MTFPU_MACHINE_SIM_DRIVER_HH
#define MTFPU_MACHINE_SIM_DRIVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.hh"
#include "machine/config.hh"
#include "machine/hook.hh"
#include "machine/machine.hh"
#include "machine/stats.hh"

namespace mtfpu::machine
{

/** One independent simulation. */
struct SimJob
{
    /** Identifier carried through to the result (table row, test name). */
    std::string name;

    /** Program image to load. */
    assembler::Program program;

    /** Machine configuration for this job. */
    MachineConfig config{};

    /**
     * Declarative initial memory image: (byte address, 64-bit word)
     * pairs written after loadProgram and before setup. Prefer this
     * over a setup closure for plain data initialization — it keeps
     * the job pure, and therefore memoizable.
     */
    std::vector<std::pair<uint64_t, uint64_t>> memInit;

    /**
     * Optional pre-run hook, called after loadProgram and memInit
     * (register initialization, observer attachment). Must only touch
     * the given Machine — it runs on a worker thread. Disqualifies
     * the job from memoization.
     */
    std::function<void(Machine &)> setup;

    /**
     * Optional run body replacing the default `return m.run()` —
     * e.g. cold+warm double runs or interrupt scheduling. Same
     * threading rules as setup; also disqualifies memoization.
     */
    std::function<RunStats(Machine &)> body;

    /**
     * Optional per-cycle mutating hook factory (fault injection).
     * Called on the worker thread after setup and before the run; the
     * returned hook is installed with Machine::setHook and kept alive
     * for the duration of the job. Disqualifies memoization — and,
     * because the hook mutates state, also marks attempts as
     * non-deterministic for retry purposes unless faultExpected says
     * otherwise. Use faults::attachPlan() to populate this from a
     * FaultPlan.
     */
    std::function<std::shared_ptr<MachineHook>(Machine &)> hookFactory;

    /**
     * This job deliberately injects faults and is *expected* to fail:
     * a failure is a normal campaign outcome — single attempt, no
     * retry, no quarantine, no crash-report artifact.
     */
    bool faultExpected = false;
};

/** Outcome of one job. */
struct SimJobResult
{
    std::string name;
    RunStats stats{};
    bool ok = false;

    /**
     * Run outcome tag. Mirrors stats.status; a guarded run
     * (CycleGuard/Watchdog) reports ok == false with its partial
     * stats preserved here.
     */
    RunStatus status = RunStatus::Ok;

    /** Simulation attempts consumed (2 = failed once, retried). */
    unsigned attempts = 0;

    /**
     * A deterministic (non-faultExpected) job failed twice in a row:
     * the failure reproduces and needs human triage. A crash report
     * was written if a report directory is configured.
     */
    bool quarantined = false;

    std::string error;     // error message when !ok
    std::string errorCode; // taxonomy name, e.g. "hazard-violation"
    std::string errorJson; // SimError::to_json() when !ok
};

/** The batch runner. */
class SimDriver
{
  public:
    /**
     * @param threads Worker count; 0 means hardware_concurrency()
     * (min 1). The pool is capped at the job count per batch.
     * @param memoize Deduplicate identical pure jobs (see file
     * comment); pass false to force every job to simulate.
     */
    explicit SimDriver(unsigned threads = 0, bool memoize = true);

    /** Effective worker count for a batch of @p jobs jobs. */
    unsigned threadsFor(size_t jobs) const;

    /** Configured worker count (after the 0 → hardware resolution). */
    unsigned threads() const { return threads_; }

    /** Whether identical pure jobs share one simulation. */
    bool memoize() const { return memoize_; }

    /**
     * Directory for crash-report artifacts (one JSON file per
     * quarantined or guard-failed job: config, program disassembly,
     * cycle of death, structured error). Created on first use; empty
     * (the default) disables artifact writing.
     */
    void setCrashReportDir(std::string dir) { crashReportDir_ = std::move(dir); }
    const std::string &crashReportDir() const { return crashReportDir_; }

    /**
     * Enable periodic checkpointing of pure jobs. Every
     * @p interval_cycles simulated cycles the worker pauses the run
     * and writes an atomic snapshot ck-<contenthash>.snap under
     * @p dir; a later batch containing the same job (identical
     * program, memInit, and config — the memoization identity) picks
     * the file up and resumes from the last checkpoint, producing
     * bit-identical final RunStats. A stale, torn, or mismatched
     * checkpoint is discarded and the job starts fresh; the file is
     * removed once its job completes. Jobs carrying setup/body/hook
     * closures never checkpoint — a closure cannot be re-applied from
     * a file. Pass an empty dir or 0 interval to disable.
     */
    void setCheckpoint(std::string dir, uint64_t interval_cycles)
    {
        checkpointDir_ = std::move(dir);
        checkpointInterval_ = interval_cycles;
    }
    const std::string &checkpointDir() const { return checkpointDir_; }

    /**
     * Per-result callback, fired on the worker thread right after each
     * *simulated* job finishes (memoized duplicates are excluded —
     * they never run). Receives the job's index in the batch and its
     * result; used for incremental journaling (campaign resume). Must
     * be thread-safe: workers invoke it concurrently.
     */
    using ResultCallback = std::function<void(size_t, const SimJobResult &)>;
    void setResultCallback(ResultCallback cb)
    {
        resultCallback_ = std::move(cb);
    }

    /**
     * Run every job; returns results in job order. Unique jobs are
     * handed to workers through an atomic cursor, so completion order
     * is arbitrary but the result vector is not. With memoization on,
     * duplicate pure jobs inherit their representative's stats (under
     * their own name) without simulating.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &jobs) const;

    /**
     * Memoization partition of a batch: result[i] is the index of the
     * first job identical to jobs[i] (== i for unique or non-pure
     * jobs). Identity means byte-equal program code, memInit, and
     * config; names are ignored. Exposed for the driver tests and for
     * callers sizing a batch in advance.
     */
    static std::vector<size_t> uniqueJobs(const std::vector<SimJob> &jobs);

    /**
     * File name (relative to the checkpoint dir) a pure job's
     * checkpoint is stored under: "ck-<contenthash>.snap". Exposed so
     * tests and tooling can seed or inspect a job's checkpoint.
     */
    static std::string checkpointFileName(const SimJob &job);

    /** Memoizable: carries no setup/body/hook closure. */
    static bool
    isPure(const SimJob &job)
    {
        return !job.setup && !job.body && !job.hookFactory;
    }

  private:
    /** One simulation attempt on a freshly constructed Machine. */
    SimJobResult attemptOne(const SimJob &job) const;

    /**
     * Checkpointed run body for a pure job: resume from the job's
     * checkpoint file if a valid one exists, then run in
     * checkpointInterval_-cycle slices, snapshotting after each pause.
     */
    RunStats runCheckpointed(const SimJob &job, Machine &machine) const;

    /** Run one job with the retry/quarantine/crash-report policy. */
    SimJobResult runOne(const SimJob &job) const;

    /** Write the crash-report artifact for a quarantined job. */
    void writeCrashReport(const SimJob &job,
                          const SimJobResult &result) const;

    unsigned threads_;
    bool memoize_;
    std::string crashReportDir_;
    std::string checkpointDir_;
    uint64_t checkpointInterval_ = 0;
    ResultCallback resultCallback_;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_SIM_DRIVER_HH
