#include "machine/sim_driver.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include "common/log.hh"
#include "isa/disasm.hh"
#include "machine/result_cache.hh"
#include "snapshot/snapshot.hh"

namespace mtfpu::machine
{

namespace
{

/** Flatten a job name into a safe artifact file name. */
std::string
artifactName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                          c == '.';
        out.push_back(keep ? c : '_');
    }
    if (out.empty())
        out = "job";
    return out;
}

/** Checkpoint file name for a job: its content hash in hex. */
std::string
checkpointName(const SimJob &job)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ck-%016llx.snap",
                  static_cast<unsigned long long>(jobContentHash(job)));
    return buf;
}

} // anonymous namespace

SimDriver::SimDriver(unsigned threads, bool memoize)
    : threads_(threads), memoize_(memoize)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

unsigned
SimDriver::threadsFor(size_t jobs) const
{
    if (jobs == 0)
        return 0;
    return static_cast<unsigned>(
        std::min<size_t>(threads_, jobs));
}

std::vector<size_t>
SimDriver::uniqueJobs(const std::vector<SimJob> &jobs)
{
    std::vector<size_t> leader(jobs.size());
    // Hash buckets hold representative indices only; a bucket scan
    // plus sameJobContent() guards against hash collisions.
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    for (size_t i = 0; i < jobs.size(); ++i) {
        leader[i] = i;
        if (!isPureJob(jobs[i]))
            continue;
        std::vector<size_t> &bucket = buckets[jobContentHash(jobs[i])];
        bool found = false;
        for (size_t rep : bucket) {
            if (sameJobContent(jobs[rep], jobs[i])) {
                leader[i] = rep;
                found = true;
                break;
            }
        }
        if (!found)
            bucket.push_back(i);
    }
    return leader;
}

std::string
SimDriver::checkpointFileName(const SimJob &job)
{
    return checkpointName(job);
}

RunStats
SimDriver::runCheckpointed(const SimJob &job, Machine &machine) const
{
    std::filesystem::create_directories(checkpointDir_);
    const std::string path = checkpointDir_ + "/" + checkpointName(job);

    // Resume from an existing checkpoint when one decodes cleanly and
    // matches this job exactly; anything else (torn write, stale hash
    // collision, format drift) falls back to a fresh start.
    if (std::filesystem::exists(path)) {
        try {
            const snapshot::MachineSnapshot snap = snapshot::readFile(path);
            if (snap.kind == snapshot::SnapshotKind::Machine &&
                snap.config == job.config &&
                snap.program.code == job.program.code) {
                snapshot::restore(machine, snap);
                inform("resuming from checkpoint " + path + " at cycle " +
                       std::to_string(machine.nextCycle()));
            } else {
                warn("checkpoint " + path + " does not match job, ignoring");
            }
        } catch (const SimError &err) {
            // A failed restore may leave partial state; rebuild the
            // initial image (the job is pure, so this is complete).
            warn(std::string("checkpoint unusable, starting fresh: ") +
                 err.what());
            machine.loadProgram(job.program);
            applyJobInit(job, machine);
        }
    }

    RunStats stats;
    for (;;) {
        stats = machine.runUntil(machine.nextCycle() + checkpointInterval_);
        if (stats.status != RunStatus::Paused)
            break;
        try {
            snapshot::writeFile(path, snapshot::capture(machine));
        } catch (const SimError &err) {
            // A checkpoint that cannot be written only costs resume
            // coverage — the run itself must not fail.
            warn(std::string("checkpoint write failed: ") + err.what());
        }
    }
    std::remove(path.c_str());
    return stats;
}

SimJobResult
SimDriver::attemptOne(const SimJob &job) const
{
    SimJobResult result;
    result.name = job.name;
    try {
        Machine machine(job.config);
        machine.loadProgram(job.program);
        applyJobInit(job, machine);
        if (job.setup)
            job.setup(machine);
        std::shared_ptr<MachineHook> hook;
        if (job.hookFactory) {
            hook = job.hookFactory(machine);
            machine.setHook(hook.get());
        }
        const bool checkpoint = !checkpointDir_.empty() &&
                                checkpointInterval_ > 0 && isPureJob(job);
        result.stats = job.body     ? job.body(machine)
                       : checkpoint ? runCheckpointed(job, machine)
                                    : machine.run();
        result.status = result.stats.status;
        // A guarded partial run keeps its stats but does not count as
        // a successful simulation of the program.
        result.ok = result.status == RunStatus::Ok;
        if (!result.ok)
            fillGuardError(result);
    } catch (const SimError &err) {
        result.ok = false;
        result.error = err.what();
        result.errorCode = errCodeName(err.code());
        result.errorJson = err.to_json();
    } catch (const std::exception &err) {
        result.ok = false;
        result.error = err.what();
        result.errorCode = errCodeName(ErrCode::Unknown);
        result.errorJson =
            SimError(ErrCode::Unknown, err.what()).to_json();
    }
    return result;
}

SimJobResult
SimDriver::runAttempt(const SimJob &job) const
{
    LogJobScope scope(job.name);
    SimJobResult result = attemptOne(job);
    result.attempts = 1;
    return result;
}

SimJobResult
SimDriver::runOne(const SimJob &job) const
{
    LogJobScope scope(job.name);
    SimJobResult result = attemptOne(job);
    result.attempts = 1;
    if (result.ok || job.faultExpected)
        return result;

    // Guard statuses are deterministic timeouts — the retry would
    // burn the same cycle/wall-clock budget to learn nothing.
    const bool guarded = result.status != RunStatus::Ok;
    if (!guarded) {
        warn("job failed (" + result.errorCode + "), retrying once: " +
             result.error);
        SimJobResult retry = attemptOne(job);
        retry.attempts = 2;
        if (retry.ok) {
            warn("job succeeded on retry — nondeterministic failure?");
            return retry;
        }
        result = std::move(retry);
        result.quarantined = true;
    } else {
        result.quarantined = true;
    }
    writeCrashReport(job, result);
    return result;
}

SimJobResult
SimDriver::runJob(const SimJob &job) const
{
    // Persistent-cache fast path: a valid entry replaces the whole
    // simulate/retry pipeline. Only deterministic outcomes are ever
    // stored, so serving one is equivalent to re-simulating.
    if (resultCache_ && isPureJob(job)) {
        if (std::optional<RunStats> cached = resultCache_->lookup(job)) {
            SimJobResult result;
            result.name = job.name;
            result.stats = *cached;
            result.status = result.stats.status;
            result.ok = result.status == RunStatus::Ok;
            result.attempts = 0;
            result.fromCache = true;
            if (!result.ok)
                fillGuardError(result);
            return result;
        }
    }
    SimJobResult result = runOne(job);
    // Store only outcomes that are a pure function of the job content:
    // a completed run, or a CycleGuard stop (the bound is part of the
    // content identity). A thrown-error result carries default stats
    // (status Ok but !result.ok) and must not masquerade as one;
    // Watchdog depends on host wall-clock speed and is never stored.
    const bool deterministic =
        ResultCache::cacheable(result.stats) &&
        (result.ok || result.status == RunStatus::CycleGuard);
    if (resultCache_ && isPureJob(job) && deterministic)
        resultCache_->store(job, result.stats);
    return result;
}

void
SimDriver::writeCrashReport(const SimJob &job,
                            const SimJobResult &result) const
{
    if (crashReportDir_.empty())
        return;
    try {
        std::filesystem::create_directories(crashReportDir_);
        const std::string base = crashReportDir_ + "/" +
                                 artifactName(job.name);
        const std::string path = base + ".json";

        // Sibling snapshot of the post-setup, pre-run state: a replay
        // tool restores it and re-executes the failure under a tracer
        // without re-deriving the initial image from closures.
        std::string snapName;
        try {
            Machine machine(job.config);
            machine.loadProgram(job.program);
            applyJobInit(job, machine);
            if (job.setup)
                job.setup(machine);
            snapshot::writeFile(base + ".snap", snapshot::capture(machine));
            snapName = artifactName(job.name) + ".snap";
        } catch (const std::exception &err) {
            warn(std::string("crash-report snapshot failed: ") + err.what());
        }

        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            warn("cannot write crash report " + path);
            return;
        }
        const MachineConfig &c = job.config;
        std::string json = "{\n  \"job\": \"" + jsonEscape(job.name) +
                           "\",\n  \"attempts\": " +
                           std::to_string(result.attempts) +
                           ",\n  \"snapshot\": " +
                           (snapName.empty()
                                ? "null"
                                : "\"" + jsonEscape(snapName) + "\"") +
                           ",\n  \"hook\": " +
                           (job.hookFactory ? "true" : "false") +
                           ",\n  \"error\": " +
                           (result.errorJson.empty() ? "null"
                                                     : result.errorJson) +
                           ",\n  \"config\": {\"fpu_latency\": " +
                           std::to_string(c.fpuLatency) +
                           ", \"store_cycles\": " +
                           std::to_string(c.storeCycles) +
                           ", \"overlap_with_vector\": " +
                           (c.overlapWithVector ? "true" : "false") +
                           ", \"hazard_policy\": " +
                           std::to_string(static_cast<int>(c.hazardPolicy)) +
                           ", \"fp_backend\": " +
                           std::to_string(static_cast<int>(c.fpBackend)) +
                           ", \"model_caches\": " +
                           (c.memory.modelCaches ? "true" : "false") +
                           ", \"max_cycles\": " +
                           std::to_string(c.maxCycles) +
                           ", \"watchdog_ms\": " +
                           std::to_string(c.watchdogMs) +
                           "},\n  \"mem_init_words\": " +
                           std::to_string(job.memInit.size()) +
                           ",\n  \"reg_init_count\": " +
                           std::to_string(job.cpuRegInit.size() +
                                          job.fpuRegInit.size()) +
                           ",\n  \"cycle_of_death\": " +
                           std::to_string(result.stats.cycles) +
                           ",\n  \"program\": \"" +
                           jsonEscape(isa::disassembleProgram(job.program)) +
                           "\"\n}\n";
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        inform("crash report written to " + path);
    } catch (const std::exception &err) {
        // Artifact writing must never fail the batch.
        warn(std::string("crash report failed: ") + err.what());
    }
}

std::vector<SimJobResult>
SimDriver::run(const std::vector<SimJob> &jobs) const
{
    std::vector<SimJobResult> results(jobs.size());

    // Memoization partition: only representatives simulate.
    std::vector<size_t> work; // indices of jobs that actually run
    std::vector<size_t> leader;
    if (memoize_) {
        leader = uniqueJobs(jobs);
        work.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (leader[i] == i)
                work.push_back(i);
        }
        // Discoverability: closures silently opt a job out of every
        // reuse layer (memo, checkpoint, result cache). One line per
        // batch tells the sweep author how much purity would buy.
        size_t closured = 0;
        for (const SimJob &job : jobs)
            closured += !isPureJob(job);
        if (closured > 0) {
            inform(std::to_string(closured) + " of " +
                   std::to_string(jobs.size()) +
                   " jobs carry setup/body/hook closures and were "
                   "disqualified from memoization; declarative "
                   "memInit/regInit would make them cacheable");
        }
    } else {
        work.resize(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            work[i] = i;
    }

    const unsigned workers = threadsFor(work.size());
    if (workers <= 1) {
        for (size_t i : work) {
            results[i] = runJob(jobs[i]);
            if (resultCallback_)
                resultCallback_(i, results[i]);
        }
    } else {
        // Work stealing through an atomic cursor: each worker claims
        // the next unstarted job. Every result slot is written by
        // exactly one worker, so the results vector needs no locking.
        std::atomic<size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const size_t w =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (w >= work.size())
                    return;
                results[work[w]] = runJob(jobs[work[w]]);
                if (resultCallback_)
                    resultCallback_(work[w], results[work[w]]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Duplicates inherit their representative's outcome, renamed.
    if (memoize_) {
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (leader[i] != i) {
                results[i] = results[leader[i]];
                results[i].name = jobs[i].name;
            }
        }
    }
    return results;
}

} // namespace mtfpu::machine
