#include "machine/sim_driver.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include "common/log.hh"
#include "isa/disasm.hh"
#include "snapshot/snapshot.hh"

namespace mtfpu::machine
{

namespace
{

/** FNV-1a over the eight bytes of @p v folded into hash @p h. */
uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Content hash of everything that can influence a pure job's RunStats:
 * the encoded instruction stream, the declarative memory image, and
 * every MachineConfig field. Collisions are harmless — sameContent()
 * verifies exact equality before two jobs share a result.
 */
uint64_t
hashJob(const SimJob &job)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    for (const isa::Instr &in : job.program.code)
        h = fnv1a(h, in.encode());
    for (const auto &[addr, word] : job.memInit) {
        h = fnv1a(h, addr);
        h = fnv1a(h, word);
    }
    const MachineConfig &c = job.config;
    h = fnv1a(h, c.fpuLatency);
    uint64_t cycle_bits;
    std::memcpy(&cycle_bits, &c.cycleNs, sizeof(cycle_bits));
    h = fnv1a(h, cycle_bits);
    h = fnv1a(h, c.storeCycles);
    h = fnv1a(h, (static_cast<uint64_t>(c.overlapWithVector) << 16) |
                     (static_cast<uint64_t>(c.hazardPolicy) << 8) |
                     static_cast<uint64_t>(c.fpBackend));
    const memory::MemoryConfig &m = c.memory;
    for (const memory::CacheConfig &cc :
         {m.dataCache, m.instrBuffer, m.instrCache}) {
        h = fnv1a(h, cc.sizeBytes);
        h = fnv1a(h, cc.lineBytes);
        h = fnv1a(h, (static_cast<uint64_t>(cc.missPenalty) << 1) |
                         static_cast<uint64_t>(cc.writeAllocate));
    }
    h = fnv1a(h, m.memBytes);
    h = fnv1a(h, static_cast<uint64_t>(m.modelCaches));
    h = fnv1a(h, c.maxCycles);
    h = fnv1a(h, c.watchdogMs);
    return h;
}

/** Flatten a job name into a safe artifact file name. */
std::string
artifactName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                          c == '.';
        out.push_back(keep ? c : '_');
    }
    if (out.empty())
        out = "job";
    return out;
}

/** Checkpoint file name for a job: its content hash in hex. */
std::string
checkpointName(const SimJob &job)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ck-%016llx.snap",
                  static_cast<unsigned long long>(hashJob(job)));
    return buf;
}

/** Exact content equality (names excluded — they don't affect stats). */
bool
sameContent(const SimJob &a, const SimJob &b)
{
    return a.config == b.config && a.memInit == b.memInit &&
           a.program.code == b.program.code;
}

} // anonymous namespace

SimDriver::SimDriver(unsigned threads, bool memoize)
    : threads_(threads), memoize_(memoize)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

unsigned
SimDriver::threadsFor(size_t jobs) const
{
    if (jobs == 0)
        return 0;
    return static_cast<unsigned>(
        std::min<size_t>(threads_, jobs));
}

std::vector<size_t>
SimDriver::uniqueJobs(const std::vector<SimJob> &jobs)
{
    std::vector<size_t> leader(jobs.size());
    // Hash buckets hold representative indices only; a bucket scan
    // plus sameContent() guards against hash collisions.
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    for (size_t i = 0; i < jobs.size(); ++i) {
        leader[i] = i;
        if (!isPure(jobs[i]))
            continue;
        std::vector<size_t> &bucket = buckets[hashJob(jobs[i])];
        bool found = false;
        for (size_t rep : bucket) {
            if (sameContent(jobs[rep], jobs[i])) {
                leader[i] = rep;
                found = true;
                break;
            }
        }
        if (!found)
            bucket.push_back(i);
    }
    return leader;
}

std::string
SimDriver::checkpointFileName(const SimJob &job)
{
    return checkpointName(job);
}

RunStats
SimDriver::runCheckpointed(const SimJob &job, Machine &machine) const
{
    std::filesystem::create_directories(checkpointDir_);
    const std::string path = checkpointDir_ + "/" + checkpointName(job);

    // Resume from an existing checkpoint when one decodes cleanly and
    // matches this job exactly; anything else (torn write, stale hash
    // collision, format drift) falls back to a fresh start.
    if (std::filesystem::exists(path)) {
        try {
            const snapshot::MachineSnapshot snap = snapshot::readFile(path);
            if (snap.kind == snapshot::SnapshotKind::Machine &&
                snap.config == job.config &&
                snap.program.code == job.program.code) {
                snapshot::restore(machine, snap);
                inform("resuming from checkpoint " + path + " at cycle " +
                       std::to_string(machine.nextCycle()));
            } else {
                warn("checkpoint " + path + " does not match job, ignoring");
            }
        } catch (const SimError &err) {
            // A failed restore may leave partial state; rebuild the
            // initial image (the job is pure, so this is complete).
            warn(std::string("checkpoint unusable, starting fresh: ") +
                 err.what());
            machine.loadProgram(job.program);
            for (const auto &[addr, word] : job.memInit)
                machine.mem().write64(addr, word);
        }
    }

    RunStats stats;
    for (;;) {
        stats = machine.runUntil(machine.nextCycle() + checkpointInterval_);
        if (stats.status != RunStatus::Paused)
            break;
        try {
            snapshot::writeFile(path, snapshot::capture(machine));
        } catch (const SimError &err) {
            // A checkpoint that cannot be written only costs resume
            // coverage — the run itself must not fail.
            warn(std::string("checkpoint write failed: ") + err.what());
        }
    }
    std::remove(path.c_str());
    return stats;
}

SimJobResult
SimDriver::attemptOne(const SimJob &job) const
{
    SimJobResult result;
    result.name = job.name;
    try {
        Machine machine(job.config);
        machine.loadProgram(job.program);
        for (const auto &[addr, word] : job.memInit)
            machine.mem().write64(addr, word);
        if (job.setup)
            job.setup(machine);
        std::shared_ptr<MachineHook> hook;
        if (job.hookFactory) {
            hook = job.hookFactory(machine);
            machine.setHook(hook.get());
        }
        const bool checkpoint = !checkpointDir_.empty() &&
                                checkpointInterval_ > 0 && isPure(job);
        result.stats = job.body     ? job.body(machine)
                       : checkpoint ? runCheckpointed(job, machine)
                                    : machine.run();
        result.status = result.stats.status;
        // A guarded partial run keeps its stats but does not count as
        // a successful simulation of the program.
        result.ok = result.status == RunStatus::Ok;
        if (!result.ok) {
            result.errorCode = runStatusName(result.status);
            result.error = std::string("run ended by ") + result.errorCode +
                           " guard after " +
                           std::to_string(result.stats.cycles) + " cycles";
            SimError guard(result.status == RunStatus::CycleGuard
                               ? ErrCode::CycleGuard
                               : ErrCode::Watchdog,
                           result.error,
                           ErrContext{
                               static_cast<int64_t>(result.stats.cycles),
                               ErrContext::kUnknown, ErrContext::kUnknown});
            result.errorJson = guard.to_json();
        }
    } catch (const SimError &err) {
        result.ok = false;
        result.error = err.what();
        result.errorCode = errCodeName(err.code());
        result.errorJson = err.to_json();
    } catch (const std::exception &err) {
        result.ok = false;
        result.error = err.what();
        result.errorCode = errCodeName(ErrCode::Unknown);
        result.errorJson =
            SimError(ErrCode::Unknown, err.what()).to_json();
    }
    return result;
}

SimJobResult
SimDriver::runOne(const SimJob &job) const
{
    LogJobScope scope(job.name);
    SimJobResult result = attemptOne(job);
    result.attempts = 1;
    if (result.ok || job.faultExpected)
        return result;

    // Guard statuses are deterministic timeouts — the retry would
    // burn the same cycle/wall-clock budget to learn nothing.
    const bool guarded = result.status != RunStatus::Ok;
    if (!guarded) {
        warn("job failed (" + result.errorCode + "), retrying once: " +
             result.error);
        SimJobResult retry = attemptOne(job);
        retry.attempts = 2;
        if (retry.ok) {
            warn("job succeeded on retry — nondeterministic failure?");
            return retry;
        }
        result = std::move(retry);
        result.quarantined = true;
    } else {
        result.quarantined = true;
    }
    writeCrashReport(job, result);
    return result;
}

void
SimDriver::writeCrashReport(const SimJob &job,
                            const SimJobResult &result) const
{
    if (crashReportDir_.empty())
        return;
    try {
        std::filesystem::create_directories(crashReportDir_);
        const std::string base = crashReportDir_ + "/" +
                                 artifactName(job.name);
        const std::string path = base + ".json";

        // Sibling snapshot of the post-setup, pre-run state: a replay
        // tool restores it and re-executes the failure under a tracer
        // without re-deriving the initial image from closures.
        std::string snapName;
        try {
            Machine machine(job.config);
            machine.loadProgram(job.program);
            for (const auto &[addr, word] : job.memInit)
                machine.mem().write64(addr, word);
            if (job.setup)
                job.setup(machine);
            snapshot::writeFile(base + ".snap", snapshot::capture(machine));
            snapName = artifactName(job.name) + ".snap";
        } catch (const std::exception &err) {
            warn(std::string("crash-report snapshot failed: ") + err.what());
        }

        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            warn("cannot write crash report " + path);
            return;
        }
        const MachineConfig &c = job.config;
        std::string json = "{\n  \"job\": \"" + jsonEscape(job.name) +
                           "\",\n  \"attempts\": " +
                           std::to_string(result.attempts) +
                           ",\n  \"snapshot\": " +
                           (snapName.empty()
                                ? "null"
                                : "\"" + jsonEscape(snapName) + "\"") +
                           ",\n  \"hook\": " +
                           (job.hookFactory ? "true" : "false") +
                           ",\n  \"error\": " +
                           (result.errorJson.empty() ? "null"
                                                     : result.errorJson) +
                           ",\n  \"config\": {\"fpu_latency\": " +
                           std::to_string(c.fpuLatency) +
                           ", \"store_cycles\": " +
                           std::to_string(c.storeCycles) +
                           ", \"overlap_with_vector\": " +
                           (c.overlapWithVector ? "true" : "false") +
                           ", \"hazard_policy\": " +
                           std::to_string(static_cast<int>(c.hazardPolicy)) +
                           ", \"fp_backend\": " +
                           std::to_string(static_cast<int>(c.fpBackend)) +
                           ", \"model_caches\": " +
                           (c.memory.modelCaches ? "true" : "false") +
                           ", \"max_cycles\": " +
                           std::to_string(c.maxCycles) +
                           ", \"watchdog_ms\": " +
                           std::to_string(c.watchdogMs) +
                           "},\n  \"mem_init_words\": " +
                           std::to_string(job.memInit.size()) +
                           ",\n  \"cycle_of_death\": " +
                           std::to_string(result.stats.cycles) +
                           ",\n  \"program\": \"" +
                           jsonEscape(isa::disassembleProgram(job.program)) +
                           "\"\n}\n";
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        inform("crash report written to " + path);
    } catch (const std::exception &err) {
        // Artifact writing must never fail the batch.
        warn(std::string("crash report failed: ") + err.what());
    }
}

std::vector<SimJobResult>
SimDriver::run(const std::vector<SimJob> &jobs) const
{
    std::vector<SimJobResult> results(jobs.size());

    // Memoization partition: only representatives simulate.
    std::vector<size_t> work; // indices of jobs that actually run
    std::vector<size_t> leader;
    if (memoize_) {
        leader = uniqueJobs(jobs);
        work.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (leader[i] == i)
                work.push_back(i);
        }
    } else {
        work.resize(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            work[i] = i;
    }

    const unsigned workers = threadsFor(work.size());
    if (workers <= 1) {
        for (size_t i : work) {
            results[i] = runOne(jobs[i]);
            if (resultCallback_)
                resultCallback_(i, results[i]);
        }
    } else {
        // Work stealing through an atomic cursor: each worker claims
        // the next unstarted job. Every result slot is written by
        // exactly one worker, so the results vector needs no locking.
        std::atomic<size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const size_t w =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (w >= work.size())
                    return;
                results[work[w]] = runOne(jobs[work[w]]);
                if (resultCallback_)
                    resultCallback_(work[w], results[work[w]]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Duplicates inherit their representative's outcome, renamed.
    if (memoize_) {
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (leader[i] != i) {
                results[i] = results[leader[i]];
                results[i].name = jobs[i].name;
            }
        }
    }
    return results;
}

} // namespace mtfpu::machine
