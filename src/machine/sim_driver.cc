#include "machine/sim_driver.hh"

#include <atomic>
#include <exception>
#include <thread>

#include "common/log.hh"

namespace mtfpu::machine
{

SimDriver::SimDriver(unsigned threads)
    : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

unsigned
SimDriver::threadsFor(size_t jobs) const
{
    if (jobs == 0)
        return 0;
    return static_cast<unsigned>(
        std::min<size_t>(threads_, jobs));
}

SimJobResult
SimDriver::runOne(const SimJob &job)
{
    SimJobResult result;
    result.name = job.name;
    try {
        Machine machine(job.config);
        machine.loadProgram(job.program);
        if (job.setup)
            job.setup(machine);
        result.stats = job.body ? job.body(machine) : machine.run();
        result.ok = true;
    } catch (const std::exception &err) {
        result.ok = false;
        result.error = err.what();
    }
    return result;
}

std::vector<SimJobResult>
SimDriver::run(const std::vector<SimJob> &jobs) const
{
    std::vector<SimJobResult> results(jobs.size());
    const unsigned workers = threadsFor(jobs.size());

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            results[i] = runOne(jobs[i]);
        return results;
    }

    // Work stealing through an atomic cursor: each worker claims the
    // next unstarted job. Every result slot is written by exactly one
    // worker, so the results vector needs no locking.
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            results[i] = runOne(jobs[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace mtfpu::machine
