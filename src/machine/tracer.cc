#include "machine/tracer.hh"

#include <algorithm>
#include <cstdio>

#include "isa/disasm.hh"

namespace mtfpu::machine
{

void
Tracer::onIssue(const exec::IssueEvent &event)
{
    // FPU ALU issues render as a transfer of the whole (vector)
    // instruction; everything else as a plain CPU issue.
    if (event.instr->major == isa::Major::FpAlu)
        record(event.cycle, TraceKind::FpTransfer, event.instr->fp.toString());
    else
        record(event.cycle, TraceKind::CpuIssue, isa::disassemble(*event.instr));
}

void
Tracer::onElement(const exec::ElementEvent &event)
{
    record(event.cycle, TraceKind::FpElement,
           isa::fpElementText(event.op, event.rr, event.ra, event.rb),
           event.latency);
}

void
Tracer::onMemAccess(const exec::MemAccessEvent &event)
{
    // Only instruction-buffer misses appear in the paper's timing
    // diagrams; data-cache penalties show up as the global freeze.
    if (event.kind == exec::MemAccessKind::InstrFetch && event.penalty > 0)
        record(event.cycle, TraceKind::GlobalStall, "ifetch miss",
               event.penalty);
}

std::string
Tracer::renderLog() const
{
    std::string out;
    char buf[160];
    for (const TraceEvent &e : events_) {
        const char *kind = "?";
        switch (e.kind) {
          case TraceKind::CpuIssue: kind = "cpu  "; break;
          case TraceKind::FpTransfer: kind = "xfer "; break;
          case TraceKind::FpElement: kind = "elem "; break;
          case TraceKind::FpWriteback: kind = "wb   "; break;
          case TraceKind::FpLoadData: kind = "lddat"; break;
          case TraceKind::GlobalStall: kind = "stall"; break;
        }
        std::snprintf(buf, sizeof(buf), "%6llu  %s %s\n",
                      static_cast<unsigned long long>(e.cycle), kind,
                      e.text.c_str());
        out += buf;
    }
    return out;
}

std::string
Tracer::renderTimeline() const
{
    // Rows: FPU elements, in issue order. Each element issued at cycle
    // c completes at the cycle recorded in its matching writeback (or
    // c + latency as a fallback while still in flight).
    struct Row
    {
        std::string label;
        uint64_t issue;
        uint64_t complete;
    };
    std::vector<Row> rows;
    uint64_t max_cycle = 0;

    for (const TraceEvent &e : events_) {
        max_cycle = std::max(max_cycle, e.cycle);
        if (e.kind == TraceKind::FpElement)
            rows.push_back(Row{e.text, e.cycle, e.cycle + e.extra});
        else if (e.kind == TraceKind::FpWriteback && e.extra != 0) {
            // extra carries the issue cycle; match the open row.
            for (Row &r : rows) {
                if (r.issue == e.extra && r.complete < e.cycle)
                    r.complete = e.cycle;
            }
        }
    }
    for (const Row &r : rows)
        max_cycle = std::max(max_cycle, r.complete);

    size_t label_w = 8;
    for (const Row &r : rows)
        label_w = std::max(label_w, r.label.size());

    std::string out;
    // Cycle header (mod-10 digits to keep it compact).
    out.append(label_w + 2, ' ');
    for (uint64_t c = 0; c <= max_cycle; ++c)
        out += static_cast<char>('0' + (c % 10));
    out += '\n';

    for (const Row &r : rows) {
        out += r.label;
        out.append(label_w - r.label.size() + 2, ' ');
        for (uint64_t c = 0; c <= max_cycle; ++c) {
            if (c == r.issue)
                out += 'I';
            else if (c == r.complete)
                out += 'W';
            else if (c > r.issue && c < r.complete)
                out += '=';
            else
                out += '.';
        }
        out += '\n';
    }
    return out;
}

} // namespace mtfpu::machine
