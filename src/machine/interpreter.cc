#include "machine/interpreter.hh"

#include <cstring>

#include "common/log.hh"
#include "softfp/fp64.hh"

namespace mtfpu::machine
{

using isa::Instr;
using isa::Major;

Interpreter::Interpreter(size_t mem_bytes)
    : mem_(mem_bytes)
{
}

void
Interpreter::loadProgram(assembler::Program program)
{
    program_ = std::move(program);
    iregs_.fill(0);
    fregs_.fill(0);
    pc_ = 0;
    halted_ = false;
    redirectPending_ = false;
    fpElements_ = 0;
}

double
Interpreter::fpRegDouble(unsigned r) const
{
    double d;
    std::memcpy(&d, &fregs_[r], sizeof(d));
    return d;
}

void
Interpreter::run(uint64_t max_steps)
{
    for (uint64_t n = 0; !halted_; ++n) {
        if (n >= max_steps)
            fatal("Interpreter: exceeded max_steps");
        step();
    }
}

void
Interpreter::step()
{
    if (pc_ >= program_.code.size())
        fatal("Interpreter: PC ran past the end of the program");
    const Instr &in = program_.code[pc_];

    // Delay-slot bookkeeping: a pending redirect fires after this
    // instruction completes.
    const bool redirect_now = redirectPending_;
    const uint32_t target = redirectTarget_;
    redirectPending_ = false;

    auto aluEval = [](isa::AluFunc f, uint64_t a, uint64_t b) {
        using isa::AluFunc;
        switch (f) {
          case AluFunc::Add: return a + b;
          case AluFunc::Sub: return a - b;
          case AluFunc::And: return a & b;
          case AluFunc::Or: return a | b;
          case AluFunc::Xor: return a ^ b;
          case AluFunc::Sll: return a << (b & 63);
          case AluFunc::Srl: return a >> (b & 63);
          case AluFunc::Sra:
            return static_cast<uint64_t>(static_cast<int64_t>(a) >>
                                         (b & 63));
          case AluFunc::Slt:
            return static_cast<uint64_t>(static_cast<int64_t>(a) <
                                         static_cast<int64_t>(b));
          case AluFunc::Sltu: return static_cast<uint64_t>(a < b);
          case AluFunc::Mul:
            return static_cast<uint64_t>(static_cast<int64_t>(a) *
                                         static_cast<int64_t>(b));
        }
        panic("Interpreter: bad ALU function");
    };

    auto writeInt = [&](unsigned r, uint64_t v) {
        if (r != 0)
            iregs_[r] = v;
    };

    switch (in.major) {
      case Major::Alu:
        writeInt(in.rd, aluEval(in.func, intReg(in.rs1), intReg(in.rs2)));
        break;
      case Major::AluImm:
        writeInt(in.rd,
                 aluEval(in.func, intReg(in.rs1),
                         static_cast<uint64_t>(
                             static_cast<int64_t>(in.imm))));
        break;
      case Major::Lui:
        writeInt(in.rd, static_cast<uint64_t>(in.imm) << isa::kLuiShift);
        break;
      case Major::Ld:
        writeInt(in.rd, mem_.read64(intReg(in.rs1) +
                                    static_cast<int64_t>(in.imm)));
        break;
      case Major::St:
        mem_.write64(intReg(in.rs1) + static_cast<int64_t>(in.imm),
                     intReg(in.rd));
        break;
      case Major::Ldf:
        fregs_[in.fr] = mem_.read64(intReg(in.rs1) +
                                    static_cast<int64_t>(in.imm));
        break;
      case Major::Stf:
        mem_.write64(intReg(in.rs1) + static_cast<int64_t>(in.imm),
                     fregs_[in.fr]);
        break;
      case Major::FpAlu: {
        const isa::FpuAluInstr &fp = in.fp;
        unsigned rr = fp.rr, ra = fp.ra, rb = fp.rb;
        for (unsigned e = 0; e < fp.length(); ++e) {
            softfp::Flags flags;
            fregs_[rr] = softfp::fpuOperate(isa::fpOpUnit(fp.op),
                                            isa::fpOpFunc(fp.op),
                                            fregs_[ra], fregs_[rb],
                                            flags);
            ++fpElements_;
            ++rr;
            if (fp.sra)
                ++ra;
            if (fp.srb)
                ++rb;
        }
        break;
      }
      case Major::Branch: {
        bool taken = false;
        const int64_t a = static_cast<int64_t>(intReg(in.rs1));
        const int64_t b = static_cast<int64_t>(intReg(in.rs2));
        switch (in.cond) {
          case isa::BranchCond::Eq: taken = a == b; break;
          case isa::BranchCond::Ne: taken = a != b; break;
          case isa::BranchCond::Lt: taken = a < b; break;
          case isa::BranchCond::Ge: taken = a >= b; break;
          case isa::BranchCond::Ltu:
            taken = intReg(in.rs1) < intReg(in.rs2);
            break;
          case isa::BranchCond::Geu:
            taken = intReg(in.rs1) >= intReg(in.rs2);
            break;
        }
        if (taken) {
            redirectPending_ = true;
            redirectTarget_ = pc_ + in.imm;
        }
        break;
      }
      case Major::Jump:
        redirectPending_ = true;
        switch (in.jkind) {
          case isa::JumpKind::J:
            redirectTarget_ = pc_ + in.imm;
            break;
          case isa::JumpKind::Jal:
            writeInt(in.rd, pc_ + 2);
            redirectTarget_ = pc_ + in.imm;
            break;
          case isa::JumpKind::Jr:
            redirectTarget_ = static_cast<uint32_t>(intReg(in.rs1));
            break;
          case isa::JumpKind::Jalr:
            redirectTarget_ = static_cast<uint32_t>(intReg(in.rs1));
            writeInt(in.rd, pc_ + 2);
            break;
        }
        break;
      case Major::Mvfc:
        writeInt(in.rd, fregs_[in.fr]);
        break;
      case Major::Halt:
        halted_ = true;
        return;
      default:
        fatal("Interpreter: unknown opcode");
    }

    pc_ = redirect_now ? target : pc_ + 1;
}

} // namespace mtfpu::machine
