#include "machine/interpreter.hh"

#include <cstring>

#include "common/log.hh"
#include "exec/semantics.hh"

namespace mtfpu::machine
{

using isa::Instr;
using isa::Major;

namespace
{

constexpr const char *kMutationNames[] = {
    "none", "flip-sra", "flip-srb", "drop-last-element", "swap-add-sub",
};

/**
 * Apply a semantics mutation to a copy of the decoded FPU word. A
 * stride flip that would run a source specifier past the register
 * file is left unapplied — the mutated shadow must stay a well-formed
 * program, just a wrong one.
 */
isa::FpuAluInstr
mutateFpInstr(isa::FpuAluInstr fp, SemanticsMutation mutation)
{
    switch (mutation) {
      case SemanticsMutation::FlipSra:
        if (fp.sra || fp.ra + fp.length() <= isa::kNumFpuRegs)
            fp.sra = !fp.sra;
        break;
      case SemanticsMutation::FlipSrb:
        if (fp.srb || fp.rb + fp.length() <= isa::kNumFpuRegs)
            fp.srb = !fp.srb;
        break;
      case SemanticsMutation::SwapAddSub:
        if (fp.op == isa::FpOp::Add)
            fp.op = isa::FpOp::Sub;
        else if (fp.op == isa::FpOp::Sub)
            fp.op = isa::FpOp::Add;
        break;
      case SemanticsMutation::None:
      case SemanticsMutation::DropLastElement: // handled at execution
        break;
    }
    return fp;
}

} // anonymous namespace

const char *
mutationName(SemanticsMutation mutation)
{
    return kMutationNames[static_cast<unsigned>(mutation)];
}

SemanticsMutation
mutationFromName(const std::string &name)
{
    for (unsigned i = 0; i < 5; ++i) {
        if (name == kMutationNames[i])
            return static_cast<SemanticsMutation>(i);
    }
    fatal(ErrCode::BadOperand, "unknown semantics mutation: " + name);
}

Interpreter::Interpreter(size_t mem_bytes)
    : mem_(mem_bytes)
{
}

void
Interpreter::loadProgram(assembler::Program program)
{
    program_ = std::move(program);
    iregs_.fill(0);
    fregs_.fill(0);
    pc_ = 0;
    halted_ = false;
    redirectPending_ = false;
    fpElements_ = 0;
}

double
Interpreter::fpRegDouble(unsigned r) const
{
    double d;
    std::memcpy(&d, &fregs_[r], sizeof(d));
    return d;
}

void
Interpreter::run(uint64_t max_steps)
{
    for (uint64_t n = 0; !halted_; ++n) {
        if (n >= max_steps)
            fatal("Interpreter: exceeded max_steps");
        step();
    }
}

void
Interpreter::step()
{
    if (halted_)
        return;
    if (pc_ >= program_.code.size())
        fatal("Interpreter: PC ran past the end of the program");
    const Instr &in = program_.code[pc_];

    // Delay-slot bookkeeping: a pending redirect fires after this
    // instruction completes.
    const bool redirect_now = redirectPending_;
    const uint32_t target = redirectTarget_;
    redirectPending_ = false;

    auto writeInt = [&](unsigned r, uint64_t v) {
        if (r != 0)
            iregs_[r] = v;
    };

    switch (in.major) {
      case Major::Alu:
        writeInt(in.rd,
                 exec::evalAlu(in.func, intReg(in.rs1), intReg(in.rs2)));
        break;
      case Major::AluImm:
        writeInt(in.rd,
                 exec::evalAlu(in.func, intReg(in.rs1),
                               static_cast<uint64_t>(
                                   static_cast<int64_t>(in.imm))));
        break;
      case Major::Lui:
        writeInt(in.rd, exec::evalLui(in.imm));
        break;
      case Major::Ld:
        writeInt(in.rd, mem_.read64(
                            exec::effectiveAddress(intReg(in.rs1), in.imm)));
        break;
      case Major::St:
        mem_.write64(exec::effectiveAddress(intReg(in.rs1), in.imm),
                     intReg(in.rd));
        break;
      case Major::Ldf:
        fregs_[in.fr] =
            mem_.read64(exec::effectiveAddress(intReg(in.rs1), in.imm));
        break;
      case Major::Stf:
        mem_.write64(exec::effectiveAddress(intReg(in.rs1), in.imm),
                     fregs_[in.fr]);
        break;
      case Major::FpAlu: {
        const isa::FpuAluInstr fp =
            mutation_ == SemanticsMutation::None
                ? in.fp
                : mutateFpInstr(in.fp, mutation_);
        const unsigned n = fp.length();
        unsigned e = 0;
        exec::forEachElement(fp, [&](unsigned rr, unsigned ra,
                                     unsigned rb) {
            if (++e == n && mutation_ == SemanticsMutation::DropLastElement)
                return;
            softfp::Flags flags;
            fregs_[rr] = exec::evalFpOp(fp.op, fregs_[ra], fregs_[rb],
                                        flags, backend_);
            ++fpElements_;
        });
        break;
      }
      case Major::Branch:
        if (exec::evalBranch(in.cond, intReg(in.rs1), intReg(in.rs2))) {
            redirectPending_ = true;
            redirectTarget_ = pc_ + in.imm;
        }
        break;
      case Major::Jump: {
        const exec::JumpEffect effect =
            exec::evalJump(in, pc_, intReg(in.rs1));
        if (effect.writesLink)
            writeInt(effect.linkReg, effect.linkValue);
        redirectPending_ = true;
        redirectTarget_ = effect.target;
        break;
      }
      case Major::Mvfc:
        writeInt(in.rd, fregs_[in.fr]);
        break;
      case Major::Halt:
        halted_ = true;
        return;
      default:
        fatal("Interpreter: unknown opcode");
    }

    pc_ = redirect_now ? target : pc_ + 1;
}

void
Interpreter::saveState(ByteWriter &out) const
{
    for (const uint64_t r : iregs_)
        out.u64(r);
    for (const uint64_t r : fregs_)
        out.u64(r);
    out.u32(pc_);
    out.b(halted_);
    out.b(redirectPending_);
    out.u32(redirectTarget_);
    out.u64(fpElements_);
    out.u8(static_cast<uint8_t>(backend_));
    mem_.saveState(out);
}

void
Interpreter::restoreState(ByteReader &in)
{
    for (uint64_t &r : iregs_)
        r = in.u64();
    for (uint64_t &r : fregs_)
        r = in.u64();
    pc_ = in.u32();
    halted_ = in.b();
    redirectPending_ = in.b();
    redirectTarget_ = in.u32();
    fpElements_ = in.u64();
    backend_ = static_cast<softfp::Backend>(in.u8());
    mem_.restoreState(in);
}

} // namespace mtfpu::machine
