#include "machine/lockstep.hh"

#include <string>

#include "common/log.hh"
#include "isa/disasm.hh"

namespace mtfpu::machine
{

namespace
{

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // anonymous namespace

std::string
DivergenceReport::to_json() const
{
    std::string json = "{\"where\":\"" + jsonEscape(where) +
                       "\",\"cycle\":" + std::to_string(cycle) +
                       ",\"instructions\":" + std::to_string(instructions);
    if (where == "issue-pc") {
        json += ",\"machine_pc\":" + std::to_string(machinePc) +
                ",\"interp_pc\":" + std::to_string(interpPc) +
                ",\"disasm\":\"" + jsonEscape(disasm) + "\"";
    }
    json += ",\"deltas\":[";
    for (size_t i = 0; i < deltas.size(); ++i) {
        if (i)
            json += ",";
        json += "{\"what\":\"" + jsonEscape(deltas[i].what) +
                "\",\"machine\":\"" + hex(deltas[i].machine) +
                "\",\"interp\":\"" + hex(deltas[i].interp) + "\"}";
    }
    json += "],\"deltas_dropped\":" + std::to_string(deltasDropped) + "}";
    return json;
}

LockstepChecker::LockstepChecker(Machine &machine)
    : machine_(machine), interp_(machine.mem().size())
{
    // The shadow executes elements with the same softfp backend as
    // the cycle model, so the differential test covers whichever
    // backend the Machine is configured with.
    interp_.setBackend(machine.config().fpBackend);
}

void
LockstepChecker::arm()
{
    interp_.loadProgram(machine_.program());
    memory::MainMemory &src = machine_.mem();
    memory::MainMemory &dst = interp_.mem();
    for (uint64_t addr = 0; addr < src.size(); addr += 8)
        dst.write64(addr, src.read64(addr));
    // Setup hooks may preload registers before run() (e.g. a graphics
    // matrix in f0..f15); mirror them into the shadow.
    for (unsigned r = 1; r < isa::kNumIntRegs; ++r)
        interp_.setIntReg(r, machine_.cpu().readReg(r));
    for (unsigned r = 0; r < isa::kNumFpuRegs; ++r)
        interp_.setFpReg(r, machine_.fpu().regs().read(r));
    issues_ = 0;
    armed_ = true;
    diverged_ = false;
    report_ = DivergenceReport{};
}

void
LockstepChecker::diverge(DivergenceReport report)
{
    diverged_ = true;
    report_ = std::move(report);
    std::string what = "lockstep divergence (" + report_.where +
                       ") at cycle " + std::to_string(report_.cycle) +
                       " after " + std::to_string(report_.instructions) +
                       " instructions";
    if (report_.where == "issue-pc") {
        what += ": machine issued pc=" + std::to_string(report_.machinePc) +
                " (" + report_.disasm + ") but the interpreter is at pc=" +
                std::to_string(report_.interpPc);
    } else if (!report_.deltas.empty()) {
        const DivergenceReport::Delta &d = report_.deltas.front();
        what += ": first delta " + d.what + " machine=" + hex(d.machine) +
                " interpreter=" + hex(d.interp) + " (" +
                std::to_string(report_.deltas.size() +
                               report_.deltasDropped) +
                " total)";
    }
    ErrContext context;
    context.cycle = static_cast<int64_t>(report_.cycle);
    throw SimError(ErrCode::LockstepDivergence, what, context);
}

void
LockstepChecker::onCycle(uint64_t cycle)
{
    (void)cycle;
    // The first active cycle of a run happens after the program and
    // data image are in place but before any instruction issues —
    // the right moment to snapshot the shadow state.
    if (!armed_)
        arm();
}

void
LockstepChecker::onIssue(const exec::IssueEvent &event)
{
    if (!armed_)
        panic("LockstepChecker: issue before the run started");
    if (event.pc != interp_.pc()) {
        DivergenceReport report;
        report.where = "issue-pc";
        report.cycle = event.cycle;
        report.instructions = issues_;
        report.machinePc = event.pc;
        report.interpPc = interp_.pc();
        report.disasm = isa::disassemble(*event.instr);
        diverge(std::move(report));
    }
    interp_.step();
    ++issues_;
}

void
LockstepChecker::onRunEnd(uint64_t cycles)
{
    if (!armed_)
        return;
    compareFinalState(cycles);
    armed_ = false; // re-arm at the next run's first cycle
    ++runsVerified_;
}

void
LockstepChecker::saveState(ByteWriter &out) const
{
    out.b(armed_);
    out.u64(issues_);
    out.u64(runsVerified_);
    if (armed_)
        interp_.saveState(out);
}

void
LockstepChecker::restoreState(ByteReader &in)
{
    armed_ = in.b();
    issues_ = in.u64();
    runsVerified_ = in.u64();
    diverged_ = false;
    report_ = DivergenceReport{};
    if (armed_) {
        // The shadow's program is not serialized; reload it from the
        // bound machine before restoring functional state over it.
        interp_.loadProgram(machine_.program());
        interp_.restoreState(in);
    }
}

void
LockstepChecker::compareFinalState(uint64_t cycles)
{
    DivergenceReport report;
    report.where = "final-state";
    report.cycle = cycles;
    report.instructions = issues_;
    auto add = [&](const std::string &what, uint64_t have, uint64_t want) {
        if (report.deltas.size() < DivergenceReport::kMaxDeltas)
            report.deltas.push_back({what, have, want});
        else
            ++report.deltasDropped;
    };

    if (!interp_.halted())
        add("halted", 1, 0);

    for (unsigned r = 1; r < isa::kNumIntRegs; ++r) {
        const uint64_t have = machine_.cpu().readReg(r);
        const uint64_t want = interp_.intReg(r);
        if (have != want)
            add("r" + std::to_string(r), have, want);
    }

    for (unsigned r = 0; r < isa::kNumFpuRegs; ++r) {
        const uint64_t have = machine_.fpu().regs().read(r);
        const uint64_t want = interp_.fpReg(r);
        if (have != want)
            add("f" + std::to_string(r), have, want);
    }

    const uint64_t have_elems = machine_.fpu().stats().elementsIssued;
    if (have_elems != interp_.fpElements())
        add("fp-element-count", have_elems, interp_.fpElements());

    memory::MainMemory &a = machine_.mem();
    memory::MainMemory &b = interp_.mem();
    for (uint64_t addr = 0; addr < a.size(); addr += 8) {
        const uint64_t have = a.read64(addr);
        const uint64_t want = b.read64(addr);
        if (have != want)
            add("mem[0x" + hex(addr) + "]", have, want);
    }

    if (!report.deltas.empty() || report.deltasDropped)
        diverge(std::move(report));
}

} // namespace mtfpu::machine
