#include "machine/lockstep.hh"

#include <string>

#include "common/log.hh"
#include "isa/disasm.hh"

namespace mtfpu::machine
{

namespace
{

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // anonymous namespace

LockstepChecker::LockstepChecker(Machine &machine)
    : machine_(machine), interp_(machine.mem().size())
{
    // The shadow executes elements with the same softfp backend as
    // the cycle model, so the differential test covers whichever
    // backend the Machine is configured with.
    interp_.setBackend(machine.config().fpBackend);
}

void
LockstepChecker::arm()
{
    interp_.loadProgram(machine_.program());
    memory::MainMemory &src = machine_.mem();
    memory::MainMemory &dst = interp_.mem();
    for (uint64_t addr = 0; addr < src.size(); addr += 8)
        dst.write64(addr, src.read64(addr));
    // Setup hooks may preload registers before run() (e.g. a graphics
    // matrix in f0..f15); mirror them into the shadow.
    for (unsigned r = 1; r < isa::kNumIntRegs; ++r)
        interp_.setIntReg(r, machine_.cpu().readReg(r));
    for (unsigned r = 0; r < isa::kNumFpuRegs; ++r)
        interp_.setFpReg(r, machine_.fpu().regs().read(r));
    issues_ = 0;
    armed_ = true;
}

void
LockstepChecker::onCycle(uint64_t cycle)
{
    (void)cycle;
    // The first active cycle of a run happens after the program and
    // data image are in place but before any instruction issues —
    // the right moment to snapshot the shadow state.
    if (!armed_)
        arm();
}

void
LockstepChecker::onIssue(const exec::IssueEvent &event)
{
    if (!armed_)
        fatal("LockstepChecker: issue before the run started");
    if (event.pc != interp_.pc()) {
        fatal("lockstep divergence at cycle " +
              std::to_string(event.cycle) + ": machine issued pc=" +
              std::to_string(event.pc) + " (" +
              isa::disassemble(*event.instr) +
              ") but the interpreter is at pc=" +
              std::to_string(interp_.pc()));
    }
    interp_.step();
    ++issues_;
}

void
LockstepChecker::onRunEnd(uint64_t cycles)
{
    if (!armed_)
        return;
    compareFinalState(cycles);
    armed_ = false; // re-arm at the next run's first cycle
    ++runsVerified_;
}

void
LockstepChecker::compareFinalState(uint64_t cycles)
{
    auto diverged = [&](const std::string &what) {
        fatal("lockstep divergence after " + std::to_string(cycles) +
              " cycles, " + std::to_string(issues_) + " instructions: " +
              what);
    };

    if (!interp_.halted())
        diverged("machine halted but the interpreter has not");

    for (unsigned r = 1; r < isa::kNumIntRegs; ++r) {
        const uint64_t have = machine_.cpu().readReg(r);
        const uint64_t want = interp_.intReg(r);
        if (have != want) {
            diverged("r" + std::to_string(r) + " machine=" + hex(have) +
                     " interpreter=" + hex(want));
        }
    }

    for (unsigned r = 0; r < isa::kNumFpuRegs; ++r) {
        const uint64_t have = machine_.fpu().regs().read(r);
        const uint64_t want = interp_.fpReg(r);
        if (have != want) {
            diverged("f" + std::to_string(r) + " machine=" + hex(have) +
                     " interpreter=" + hex(want));
        }
    }

    const uint64_t have_elems = machine_.fpu().stats().elementsIssued;
    if (have_elems != interp_.fpElements()) {
        diverged("FPU element count machine=" +
                 std::to_string(have_elems) + " interpreter=" +
                 std::to_string(interp_.fpElements()));
    }

    memory::MainMemory &a = machine_.mem();
    memory::MainMemory &b = interp_.mem();
    for (uint64_t addr = 0; addr < a.size(); addr += 8) {
        const uint64_t have = a.read64(addr);
        const uint64_t want = b.read64(addr);
        if (have != want) {
            diverged("mem[0x" + hex(addr) + "] machine=" + hex(have) +
                     " interpreter=" + hex(want));
        }
    }
}

} // namespace mtfpu::machine
