/**
 * @file
 * The machine cycle-hook interface — an ExecObserver-adjacent surface
 * for agents that must *mutate* the machine mid-run (fault injectors,
 * interactive debuggers) rather than just watch the event stream.
 * ExecObserver callbacks receive immutable events; a MachineHook is
 * handed the Machine itself at the top of every active cycle, before
 * retirements and issue.
 *
 * A Machine holds at most one hook (setHook), checked by a single
 * pointer test per cycle, so the unhooked fast path stays free.
 */

#ifndef MTFPU_MACHINE_HOOK_HH
#define MTFPU_MACHINE_HOOK_HH

#include <cstdint>

namespace mtfpu::machine
{

class Machine;

/** Mutating per-cycle hook; see file comment. */
class MachineHook
{
  public:
    virtual ~MachineHook() = default;

    /**
     * Called at the start of every active cycle with the cycle number
     * about to execute, after observers were notified of the cycle
     * boundary (so differential checkers snapshot clean state before
     * any mutation) but before retirements and issue. During a bulk
     * stall fast-forward the machine may skip cycle numbers; a hook
     * scheduling work by cycle must treat @p cycle as "at least this
     * far" and fire everything due.
     */
    virtual void onCycleStart(uint64_t cycle, Machine &machine) = 0;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_HOOK_HH
