/**
 * @file
 * Built-in ExecObserver implementations that used to be hard-wired
 * into the Machine. The StatsCollector derives every event-countable
 * RunStats field from the observer stream; the Machine itself only
 * contributes the final cycle count and the subsystem (FPU/cache)
 * counter blocks.
 */

#ifndef MTFPU_MACHINE_OBSERVERS_HH
#define MTFPU_MACHINE_OBSERVERS_HH

#include "exec/observer.hh"
#include "machine/stats.hh"

namespace mtfpu::machine
{

/** Derives RunStats issue/stall/memory counters from the event stream. */
class StatsCollector : public exec::ExecObserver
{
  public:
    void
    onCycle(uint64_t cycle) override
    {
        (void)cycle;
        elementBeforeIssue_ = false;
        issueSeen_ = false;
    }

    void
    onIssue(const exec::IssueEvent &event) override
    {
        ++counts_.instructionsIssued;
        issueSeen_ = true;
        // Dual issue means a standing-IR element re-issued alongside a
        // CPU instruction. The first element of an FPALU transfer
        // rides the transfer itself and is not counted (the element
        // event follows the issue event in that case).
        if (elementBeforeIssue_)
            ++counts_.dualIssueCycles;
        switch (event.instr->major) {
          case isa::Major::FpAlu:
            ++counts_.fpAluTransfers;
            break;
          case isa::Major::Branch:
          case isa::Major::Jump:
            ++counts_.branches;
            if (event.branchTaken)
                ++counts_.takenBranches;
            break;
          default:
            break;
        }
    }

    void
    onElement(const exec::ElementEvent &event) override
    {
        (void)event;
        if (!issueSeen_)
            elementBeforeIssue_ = true;
    }

    void
    onMemAccess(const exec::MemAccessEvent &event) override
    {
        switch (event.kind) {
          case exec::MemAccessKind::Load: ++counts_.loads; break;
          case exec::MemAccessKind::Store: ++counts_.stores; break;
          case exec::MemAccessKind::FpLoad: ++counts_.fpLoads; break;
          case exec::MemAccessKind::FpStore: ++counts_.fpStores; break;
          case exec::MemAccessKind::InstrFetch: break;
        }
    }

    void
    onStall(const exec::StallEvent &event) override
    {
        if (event.kind == exec::StallKind::Memory)
            ++counts_.memoryStallCycles;
        else
            ++counts_.cpuStallCycles;
    }

    /**
     * Account @p n memory-stall cycles at once. Used by the Machine's
     * zero-observer fast path, which burns a whole global stall in
     * one step instead of replaying per-cycle stall events.
     */
    void addMemoryStalls(uint64_t n) { counts_.memoryStallCycles += n; }

    /** Copy the event-derived counters into @p stats. */
    void
    fill(RunStats &stats) const
    {
        stats.instructionsIssued = counts_.instructionsIssued;
        stats.loads = counts_.loads;
        stats.stores = counts_.stores;
        stats.fpLoads = counts_.fpLoads;
        stats.fpStores = counts_.fpStores;
        stats.fpAluTransfers = counts_.fpAluTransfers;
        stats.branches = counts_.branches;
        stats.takenBranches = counts_.takenBranches;
        stats.memoryStallCycles = counts_.memoryStallCycles;
        stats.cpuStallCycles = counts_.cpuStallCycles;
        stats.dualIssueCycles = counts_.dualIssueCycles;
    }

    /** Zero all counters (start of a run). */
    void
    reset()
    {
        counts_ = RunStats{};
        elementBeforeIssue_ = false;
        issueSeen_ = false;
    }

    /** Serialize counters and intra-cycle pairing state. */
    void
    saveState(ByteWriter &out) const
    {
        counts_.saveState(out);
        out.b(elementBeforeIssue_);
        out.b(issueSeen_);
    }

    /** Restore state saved by saveState(). */
    void
    restoreState(ByteReader &in)
    {
        counts_.restoreState(in);
        elementBeforeIssue_ = in.b();
        issueSeen_ = in.b();
    }

  private:
    RunStats counts_;
    // Per-cycle dual-issue pairing state (reset by onCycle).
    bool elementBeforeIssue_ = false;
    bool issueSeen_ = false;
};

} // namespace mtfpu::machine

#endif // MTFPU_MACHINE_OBSERVERS_HH
