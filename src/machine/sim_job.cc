#include "machine/sim_job.hh"

#include <cstring>

#include "common/sim_error.hh"

namespace mtfpu::machine
{

namespace
{

/** FNV-1a over the eight bytes of @p v folded into hash @p h. */
uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // anonymous namespace

uint64_t
jobContentHash(const SimJob &job)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    for (const isa::Instr &in : job.program.code)
        h = fnv1a(h, in.encode());
    for (const auto &[addr, word] : job.memInit) {
        h = fnv1a(h, addr);
        h = fnv1a(h, word);
    }
    // Register images are domain-tagged so a CPU init and an FPU init
    // of the same (reg, value) pair hash differently.
    for (const auto &[reg, value] : job.cpuRegInit) {
        h = fnv1a(h, 0x1000000000000000ull | reg);
        h = fnv1a(h, value);
    }
    for (const auto &[reg, value] : job.fpuRegInit) {
        h = fnv1a(h, 0x2000000000000000ull | reg);
        h = fnv1a(h, value);
    }
    const MachineConfig &c = job.config;
    h = fnv1a(h, c.fpuLatency);
    uint64_t cycle_bits;
    std::memcpy(&cycle_bits, &c.cycleNs, sizeof(cycle_bits));
    h = fnv1a(h, cycle_bits);
    h = fnv1a(h, c.storeCycles);
    h = fnv1a(h, (static_cast<uint64_t>(c.overlapWithVector) << 16) |
                     (static_cast<uint64_t>(c.hazardPolicy) << 8) |
                     static_cast<uint64_t>(c.fpBackend));
    const memory::MemoryConfig &m = c.memory;
    for (const memory::CacheConfig &cc :
         {m.dataCache, m.instrBuffer, m.instrCache}) {
        h = fnv1a(h, cc.sizeBytes);
        h = fnv1a(h, cc.lineBytes);
        h = fnv1a(h, (static_cast<uint64_t>(cc.missPenalty) << 1) |
                         static_cast<uint64_t>(cc.writeAllocate));
    }
    h = fnv1a(h, m.memBytes);
    h = fnv1a(h, static_cast<uint64_t>(m.modelCaches));
    h = fnv1a(h, c.maxCycles);
    h = fnv1a(h, c.watchdogMs);
    return h;
}

bool
sameJobContent(const SimJob &a, const SimJob &b)
{
    return a.config == b.config && a.memInit == b.memInit &&
           a.cpuRegInit == b.cpuRegInit && a.fpuRegInit == b.fpuRegInit &&
           a.program.code == b.program.code;
}

std::vector<uint8_t>
jobContentBlob(const SimJob &job)
{
    ByteWriter out;
    out.u32(static_cast<uint32_t>(job.program.code.size()));
    for (const isa::Instr &in : job.program.code)
        out.u32(in.encode());
    out.u32(static_cast<uint32_t>(job.memInit.size()));
    for (const auto &[addr, word] : job.memInit) {
        out.u64(addr);
        out.u64(word);
    }
    out.u32(static_cast<uint32_t>(job.cpuRegInit.size()));
    for (const auto &[reg, value] : job.cpuRegInit) {
        out.u32(reg);
        out.u64(value);
    }
    out.u32(static_cast<uint32_t>(job.fpuRegInit.size()));
    for (const auto &[reg, value] : job.fpuRegInit) {
        out.u32(reg);
        out.u64(value);
    }
    const MachineConfig &c = job.config;
    out.u32(c.fpuLatency);
    out.f64(c.cycleNs);
    out.u32(c.storeCycles);
    out.b(c.overlapWithVector);
    out.u8(static_cast<uint8_t>(c.hazardPolicy));
    out.u8(static_cast<uint8_t>(c.fpBackend));
    for (const memory::CacheConfig &cc :
         {c.memory.dataCache, c.memory.instrBuffer, c.memory.instrCache}) {
        out.u64(cc.sizeBytes);
        out.u64(cc.lineBytes);
        out.u32(cc.missPenalty);
        out.b(cc.writeAllocate);
    }
    out.u64(c.memory.memBytes);
    out.b(c.memory.modelCaches);
    out.u64(c.maxCycles);
    out.u64(c.watchdogMs);
    return out.take();
}

void
applyJobInit(const SimJob &job, Machine &machine)
{
    for (const auto &[addr, word] : job.memInit)
        machine.mem().write64(addr, word);
    for (const auto &[reg, value] : job.cpuRegInit)
        machine.cpu().writeReg(reg, value);
    for (const auto &[reg, value] : job.fpuRegInit)
        machine.fpu().regs().write(reg, value);
}

void
fillGuardError(SimJobResult &result)
{
    result.errorCode = runStatusName(result.status);
    result.error = std::string("run ended by ") + result.errorCode +
                   " guard after " + std::to_string(result.stats.cycles) +
                   " cycles";
    SimError guard(result.status == RunStatus::CycleGuard
                       ? ErrCode::CycleGuard
                       : ErrCode::Watchdog,
                   result.error,
                   ErrContext{static_cast<int64_t>(result.stats.cycles),
                              ErrContext::kUnknown, ErrContext::kUnknown});
    result.errorJson = guard.to_json();
}

} // namespace mtfpu::machine
