#include "machine/machine.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "exec/semantics.hh"

namespace mtfpu::machine
{

using isa::Instr;
using isa::Major;

Machine::Machine(const MachineConfig &config)
    : config_(config), memsys_(config.memory),
      fpu_(config.fpuLatency, config.fpBackend)
{
}

void
Machine::loadProgram(assembler::Program program)
{
    program_ = std::move(program);
    predecode();
    resetForRun(true);
}

void
Machine::predecode()
{
    code_.clear();
    code_.reserve(program_.code.size());
    for (uint32_t pc = 0; pc < program_.code.size(); ++pc) {
        const Instr &in = program_.code[pc];

        // Static control-flow validation: a pc-relative target outside
        // the program can only ever fault (PC runaway), so reject the
        // image at load time with a structured error instead.
        if (in.major == Major::Branch ||
            (in.major == Major::Jump && (in.jkind == isa::JumpKind::J ||
                                         in.jkind == isa::JumpKind::Jal))) {
            const int64_t target = static_cast<int64_t>(pc) + in.imm;
            if (target < 0 ||
                target >= static_cast<int64_t>(program_.code.size())) {
                fatal(ErrCode::BadProgram,
                      "Machine: control transfer at pc=" +
                          std::to_string(pc) + " targets " +
                          std::to_string(target) +
                          ", outside the program (size " +
                          std::to_string(program_.code.size()) + ")");
            }
        }

        IssueSlot slot;
        slot.major = in.major;
        slot.func = in.func;
        slot.cond = in.cond;
        slot.jkind = in.jkind;
        slot.rd = in.rd;
        slot.rs1 = in.rs1;
        slot.rs2 = in.rs2;
        slot.fr = in.fr;
        slot.imm64 = in.major == Major::Lui
                         ? exec::evalLui(in.imm)
                         : static_cast<uint64_t>(
                               static_cast<int64_t>(in.imm));
        slot.target = pc + in.imm;
        slot.link = exec::linkAddress(pc);
        slot.fetchAddr = static_cast<uint64_t>(pc) * 4;
        slot.fp = in.fp;
        slot.raw = &program_.code[pc];
        code_.push_back(slot);
    }
}

void
Machine::resetForRun(bool flush_caches)
{
    cpu_.reset();
    fpu_.reset();
    memPortFreeAt_ = 0;
    fetchedPc_ = -1;
    globalStall_ = 0;
    interruptAt_ = UINT64_MAX;
    interruptLen_ = 0;
    nextCycle_ = 0;
    stats_ = RunStats{};
    collector_.reset();
    memsys_.resetStats();
    if (flush_caches)
        memsys_.flushAll();
}

void
Machine::addObserver(exec::ExecObserver *observer)
{
    if (observer)
        observers_.push_back(observer);
    hasObservers_ = !observers_.empty();
}

void
Machine::removeObserver(exec::ExecObserver *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
    hasObservers_ = !observers_.empty();
}

void
Machine::attachTracer(Tracer *tracer)
{
    if (tracer_)
        removeObserver(tracer_);
    tracer_ = tracer;
    if (tracer_)
        addObserver(tracer_);
}

// Event fan-out. The built-in StatsCollector is a direct (devirtualized)
// call; the registered-observer loops are skipped outright through the
// cached hasObservers_ flag, so an unobserved simulation pays nothing
// per event beyond the collector's counter updates.

void
Machine::notifyCycle(uint64_t cycle)
{
    collector_.onCycle(cycle);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onCycle(cycle);
    }
}

void
Machine::notifyIssue(const exec::IssueEvent &event)
{
    collector_.onIssue(event);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onIssue(event);
    }
}

void
Machine::notifyElement(const exec::ElementEvent &event)
{
    collector_.onElement(event);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onElement(event);
    }
}

void
Machine::notifyMemAccess(const exec::MemAccessEvent &event)
{
    collector_.onMemAccess(event);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onMemAccess(event);
    }
}

void
Machine::notifyRetire(const exec::RetireEvent &event)
{
    collector_.onRetire(event);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onRetire(event);
    }
}

void
Machine::notifyStall(const exec::StallEvent &event)
{
    collector_.onStall(event);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onStall(event);
    }
}

void
Machine::notifyRunEnd(uint64_t cycles)
{
    collector_.onRunEnd(cycles);
    if (hasObservers_) {
        for (exec::ExecObserver *o : observers_)
            o->onRunEnd(cycles);
    }
}

void
Machine::emitElement(uint64_t cycle, const fpu::ElementIssue &element)
{
    exec::ElementEvent event;
    event.cycle = cycle;
    event.op = element.op;
    event.rr = element.rr;
    event.ra = element.ra;
    event.rb = element.rb;
    event.last = element.last;
    event.latency = fpu_.latency();
    notifyElement(event);
}

RunStats
Machine::run()
{
    if (code_.empty())
        fatal(ErrCode::NoProgram, "Machine::run: no program loaded");
    return runLoop(UINT64_MAX);
}

RunStats
Machine::runUntil(uint64_t stop_cycle)
{
    if (code_.empty())
        fatal(ErrCode::NoProgram, "Machine::runUntil: no program loaded");
    return runLoop(stop_cycle);
}

void
Machine::stampErrContext(SimError &err, uint64_t cycle) const
{
    // Stamp the context an inner throw site (register file,
    // scoreboard, memory, decode) couldn't know: the cycle and PC of
    // death plus the faulting instruction word. Only fields the site
    // left unknown are filled.
    ErrContext context;
    context.cycle = static_cast<int64_t>(cycle);
    if (cpu_.pc < code_.size()) {
        context.pc = static_cast<int64_t>(cpu_.pc);
        context.instr = static_cast<int64_t>(code_[cpu_.pc].raw->encode());
    }
    err.supplyContext(context);
}

RunStats
Machine::finishRun(uint64_t cycle, RunStatus status)
{
    nextCycle_ = cycle;
    stats_.cycles = cycle > 0 ? cycle - 1 : 0;
    collector_.fill(stats_);
    stats_.fpu = fpu_.stats();
    stats_.dataCache = memsys_.dataStats();
    stats_.instrBuffer = memsys_.instrBufferStats();
    stats_.instrCache = memsys_.instrCacheStats();
    stats_.status = status;
    // onRunEnd's contract is "halted and drained"; a guarded partial
    // run never reached that state, so observers (in particular the
    // lockstep final-state comparison) must not fire on it.
    if (status == RunStatus::Ok)
        notifyRunEnd(stats_.cycles);
    return stats_;
}

RunStats
Machine::runLoop(uint64_t stop_cycle)
{
    // The cycle counter stays a plain local (not a by-reference out
    // parameter) so the optimizer can keep it in a register across
    // the loop; the catch below still sees the current value for
    // context stamping because it is in the same frame. Resumes where
    // the previous run()/runUntil() on this program left off.
    uint64_t cycle = nextCycle_;

    // Loop-invariant limits, hoisted out of the per-cycle path. The
    // maxCycles guard takes priority over a runUntil() pause.
    const uint64_t max_cycles = config_.maxCycles;
    const uint64_t limit = std::min(max_cycles, stop_cycle);

    // Wall-clock watchdog: sample the clock every kWatchdogStride
    // cycles. Disabled, it degrades to one always-false compare
    // against UINT64_MAX per cycle.
    constexpr uint64_t kWatchdogStride = 1ull << 22;
    using Clock = std::chrono::steady_clock;
    Clock::time_point watchdog_deadline{};
    uint64_t watchdog_check_at = UINT64_MAX;
    if (config_.watchdogMs > 0) {
        watchdog_deadline =
            Clock::now() + std::chrono::milliseconds(config_.watchdogMs);
        watchdog_check_at = cycle + kWatchdogStride;
    }

    try {
    for (;;) {
        if (cycle >= max_cycles)
            return finishRun(cycle, RunStatus::CycleGuard);
        if (cycle >= stop_cycle)
            return finishRun(cycle, RunStatus::Paused);
        if (cycle >= watchdog_check_at) {
            watchdog_check_at = cycle + kWatchdogStride;
            if (Clock::now() >= watchdog_deadline)
                return finishRun(cycle, RunStatus::Watchdog);
        }

        // Lock-step global stall: every pipeline is frozen. With no
        // observers attached nothing can watch the intermediate
        // cycles, so the whole stall is burned in one step — capped at
        // the guard/pause limit, preserving the remainder so a paused
        // machine resumes mid-stall bit-identically; with observers
        // the per-cycle stall events are replayed exactly.
        if (globalStall_ > 0) {
            if (!hasObservers_) {
                const uint64_t burn =
                    std::min(globalStall_, limit - cycle);
                collector_.addMemoryStalls(burn);
                cycle += burn;
                globalStall_ -= burn;
                continue;
            }
            --globalStall_;
            notifyStall(exec::StallEvent{cycle, exec::StallKind::Memory});
            ++cycle;
            continue;
        }

        // Done when the CPU has halted and all pipelines drained.
        if (cpu_.halted && !fpu_.busy() && !cpu_.pendingWrites())
            break;

        notifyCycle(cycle);

        // The mutating hook (fault injection) runs after observers
        // have seen the cycle boundary — a lockstep checker snapshots
        // its shadow state at the first cycle event, so even a cycle-0
        // fault strikes *after* the clean-state snapshot and stays
        // detectable — but before any issue or retirement, so the
        // corruption is architecturally visible within this cycle.
        if (hook_)
            hook_->onCycleStart(cycle, *this);

        // Retirements first: results written back this cycle are
        // architecturally visible to everything issued below.
        for (const fpu::PendingOp &op : fpu_.beginCycle()) {
            exec::RetireEvent retire;
            retire.cycle = cycle;
            retire.op = op.op;
            retire.reg = op.reg;
            retire.value = op.value;
            retire.overflowed = op.flags.overflow;
            notifyRetire(retire);
        }
        cpu_.advance();

        // The occupied ALU IR issues one element per cycle...
        const fpu::ElementEvent ev = fpu_.tryIssueElement();
        if (ev.issued)
            emitElement(cycle, ev.element);

        // ...while the CPU issues in parallel (unless a modeled
        // interrupt has diverted it to a handler, §2.3.1 — the FPU's
        // element re-issue above is unaffected).
        const bool interrupted =
            cycle >= interruptAt_ && cycle < interruptAt_ + interruptLen_;
        if (!cpu_.halted && !interrupted)
            tryCpuIssue(cycle);

        ++cycle;
    }
    } catch (SimError &err) {
        stampErrContext(err, cycle);
        throw;
    }

    return finishRun(cycle, RunStatus::Ok);
}

void
Machine::finishIssue(bool redirect_pending)
{
    // The issued instruction leaves the fetch stage; the next PC must
    // access the instruction buffer afresh (even if it is the same
    // address, as in a one-instruction loop).
    fetchedPc_ = -1;
    if (redirect_pending) {
        // This instruction was the delay slot of a taken branch.
        cpu_.pc = *cpu_.redirect;
        cpu_.redirect.reset();
    } else {
        ++cpu_.pc;
    }
}

bool
Machine::stallCpu(uint64_t cycle)
{
    notifyStall(exec::StallEvent{cycle, exec::StallKind::Cpu});
    return false;
}

bool
Machine::handleHazard(uint64_t cycle, unsigned reg, bool include_sources)
{
    if (!fpu_.hazardWithUnissued(reg, include_sources))
        return true;
    switch (config_.hazardPolicy) {
      case HazardPolicy::Fatal:
        fatal(ErrCode::HazardViolation,
              "load/store of f" + std::to_string(reg) +
                  " races with an unissued vector element (pc=" +
                  std::to_string(cpu_.pc) + ", cycle=" +
                  std::to_string(cycle) + "); the compiler must break "
                  "the vector (paper §2.3.2)",
              ErrContext{static_cast<int64_t>(cycle),
                         static_cast<int64_t>(cpu_.pc),
                         ErrContext::kUnknown});
      case HazardPolicy::Stall:
        stallCpu(cycle);
        return false;
      case HazardPolicy::Ignore:
        return true;
    }
    return true;
}

bool
Machine::tryCpuIssue(uint64_t cycle)
{
    if (cpu_.pc >= code_.size())
        fatal(ErrCode::PcRunaway,
              "Machine: PC " + std::to_string(cpu_.pc) +
                  " ran past the end of the program (missing halt?)",
              ErrContext{static_cast<int64_t>(cycle),
                         static_cast<int64_t>(cpu_.pc),
                         ErrContext::kUnknown});

    // Single-issue ablation: nothing issues while the IR is busy.
    if (!config_.overlapWithVector && fpu_.aluIrBusy())
        return stallCpu(cycle);

    const IssueSlot &in = code_[cpu_.pc];

    // Instruction fetch through the instruction buffer (charged once
    // per PC value).
    if (fetchedPc_ != static_cast<int64_t>(cpu_.pc)) {
        fetchedPc_ = static_cast<int64_t>(cpu_.pc);
        const unsigned penalty = memsys_.instrFetch(in.fetchAddr);
        notifyMemAccess(exec::MemAccessEvent{
            cycle, in.fetchAddr, exec::MemAccessKind::InstrFetch,
            penalty});
        if (penalty > 0) {
            globalStall_ = penalty;
            return stallCpu(cycle);
        }
    }

    // If a taken branch is outstanding, this instruction is its delay
    // slot; the redirect fires when it completes issue.
    const bool redirect_pending = cpu_.redirect.has_value();

    // Control-flow outcome for the issue event (branches/jumps only).
    bool branch_taken = false;

    switch (in.major) {
      case Major::Alu: {
        // regReady on the destination is the WAW interlock: a delayed
        // load/mvfc writeback still in flight would otherwise land
        // after this result and silently clobber it.
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rs2) ||
            !cpu_.regReady(in.rd))
            return stallCpu(cycle);
        cpu_.writeReg(in.rd, exec::evalAlu(in.func, cpu_.readReg(in.rs1),
                                           cpu_.readReg(in.rs2)));
        break;
      }
      case Major::AluImm: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rd))
            return stallCpu(cycle);
        cpu_.writeReg(in.rd, exec::evalAlu(in.func, cpu_.readReg(in.rs1),
                                           in.imm64));
        break;
      }
      case Major::Lui:
        if (!cpu_.regReady(in.rd))
            return stallCpu(cycle);
        cpu_.writeReg(in.rd, in.imm64);
        break;
      case Major::Ld: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rd) ||
            memPortFreeAt_ > cycle)
            return stallCpu(cycle);
        const uint64_t addr = cpu_.readReg(in.rs1) + in.imm64;
        const unsigned penalty = memsys_.dataAccess(addr, false);
        cpu_.scheduleWrite(in.rd, memsys_.mem().read64(addr), 2);
        memPortFreeAt_ = cycle + 1;
        if (penalty > 0)
            globalStall_ = penalty;
        notifyMemAccess(exec::MemAccessEvent{
            cycle, addr, exec::MemAccessKind::Load, penalty});
        break;
      }
      case Major::St: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rd) ||
            memPortFreeAt_ > cycle) {
            return stallCpu(cycle);
        }
        const uint64_t addr = cpu_.readReg(in.rs1) + in.imm64;
        memsys_.mem().write64(addr, cpu_.readReg(in.rd));
        const unsigned penalty = memsys_.dataAccess(addr, true);
        memPortFreeAt_ = cycle + config_.storeCycles;
        if (penalty > 0)
            globalStall_ = penalty;
        notifyMemAccess(exec::MemAccessEvent{
            cycle, addr, exec::MemAccessKind::Store, penalty});
        break;
      }
      case Major::Ldf: {
        if (!cpu_.regReady(in.rs1) || memPortFreeAt_ > cycle)
            return stallCpu(cycle);
        if (fpu_.transferStall(in.fr))
            return stallCpu(cycle);
        if (fpu_.currentElementInterlock(in.fr, true))
            return stallCpu(cycle);
        if (!handleHazard(cycle, in.fr, true))
            return false;
        const uint64_t addr = cpu_.readReg(in.rs1) + in.imm64;
        const unsigned penalty = memsys_.dataAccess(addr, false);
        fpu_.issueLoad(in.fr, memsys_.mem().read64(addr));
        memPortFreeAt_ = cycle + 1;
        if (penalty > 0)
            globalStall_ = penalty;
        notifyMemAccess(exec::MemAccessEvent{
            cycle, addr, exec::MemAccessKind::FpLoad, penalty});
        break;
      }
      case Major::Stf: {
        if (!cpu_.regReady(in.rs1) || memPortFreeAt_ > cycle)
            return stallCpu(cycle);
        if (fpu_.transferStall(in.fr))
            return stallCpu(cycle);
        if (fpu_.currentElementInterlock(in.fr, false))
            return stallCpu(cycle);
        if (!handleHazard(cycle, in.fr, false))
            return false;
        const uint64_t addr = cpu_.readReg(in.rs1) + in.imm64;
        memsys_.mem().write64(addr, fpu_.readForTransfer(in.fr));
        const unsigned penalty = memsys_.dataAccess(addr, true);
        memPortFreeAt_ = cycle + config_.storeCycles;
        if (penalty > 0)
            globalStall_ = penalty;
        notifyMemAccess(exec::MemAccessEvent{
            cycle, addr, exec::MemAccessKind::FpStore, penalty});
        break;
      }
      case Major::FpAlu: {
        if (!fpu_.canTransferAlu())
            return stallCpu(cycle);
        fpu_.transferAlu(in.fp);
        notifyIssue(exec::IssueEvent{cycle, cpu_.pc, in.raw, false});
        const fpu::ElementEvent ev = fpu_.tryIssueElement();
        if (ev.issued)
            emitElement(cycle, ev.element);
        finishIssue(redirect_pending);
        return true;
      }
      case Major::Branch: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rs2))
            return stallCpu(cycle);
        if (cpu_.redirect)
            fatal(ErrCode::BranchDelay,
                  "branch in a branch delay slot (pc=" +
                      std::to_string(cpu_.pc) + ")");
        if (exec::evalBranch(in.cond, cpu_.readReg(in.rs1),
                             cpu_.readReg(in.rs2))) {
            branch_taken = true;
            cpu_.redirect = in.target;
        }
        break;
      }
      case Major::Jump: {
        if (cpu_.redirect)
            fatal(ErrCode::BranchDelay,
                  "jump in a branch delay slot (pc=" +
                      std::to_string(cpu_.pc) + ")");
        // Same effect as exec::evalJump, from predecoded fields.
        switch (in.jkind) {
          case isa::JumpKind::J:
            cpu_.redirect = in.target;
            break;
          case isa::JumpKind::Jal:
            if (!cpu_.regReady(in.rd))
                return stallCpu(cycle);
            cpu_.writeReg(in.rd, in.link);
            cpu_.redirect = in.target;
            break;
          case isa::JumpKind::Jr:
            if (!cpu_.regReady(in.rs1))
                return stallCpu(cycle);
            cpu_.redirect =
                static_cast<uint32_t>(cpu_.readReg(in.rs1));
            break;
          case isa::JumpKind::Jalr:
            if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rd))
                return stallCpu(cycle);
            cpu_.redirect =
                static_cast<uint32_t>(cpu_.readReg(in.rs1));
            cpu_.writeReg(in.rd, in.link);
            break;
        }
        branch_taken = true;
        break;
      }
      case Major::Mvfc: {
        if (!cpu_.regReady(in.rd))
            return stallCpu(cycle);
        if (fpu_.transferStall(in.fr))
            return stallCpu(cycle);
        if (fpu_.currentElementInterlock(in.fr, false))
            return stallCpu(cycle);
        if (!handleHazard(cycle, in.fr, false))
            return false;
        cpu_.scheduleWrite(in.rd, fpu_.readForTransfer(in.fr), 2);
        break;
      }
      case Major::Halt:
        cpu_.halted = true;
        notifyIssue(exec::IssueEvent{cycle, cpu_.pc, in.raw, false});
        return true;
      default:
        fatal(ErrCode::BadEncoding,
              "Machine: unknown opcode at pc=" + std::to_string(cpu_.pc));
    }

    notifyIssue(exec::IssueEvent{cycle, cpu_.pc, in.raw, branch_taken});
    finishIssue(redirect_pending);
    return true;
}

void
Machine::saveState(ByteWriter &out) const
{
    cpu_.saveState(out);
    fpu_.saveState(out);
    memsys_.saveState(out);
    collector_.saveState(out);
    out.u64(memPortFreeAt_);
    out.i64(fetchedPc_);
    out.u64(globalStall_);
    out.u64(interruptAt_);
    out.u64(interruptLen_);
    out.u64(nextCycle_);
}

void
Machine::restoreState(ByteReader &in)
{
    cpu_.restoreState(in);
    fpu_.restoreState(in);
    memsys_.restoreState(in);
    collector_.restoreState(in);
    memPortFreeAt_ = in.u64();
    fetchedPc_ = in.i64();
    globalStall_ = in.u64();
    interruptAt_ = in.u64();
    interruptLen_ = in.u64();
    nextCycle_ = in.u64();
    // stats_ is not serialized: finishRun() recomputes every field
    // from the collector and subsystem counters restored above.
    stats_ = RunStats{};
}

} // namespace mtfpu::machine
