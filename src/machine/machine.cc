#include "machine/machine.hh"

#include <cstdio>

#include "common/log.hh"
#include "isa/disasm.hh"

namespace mtfpu::machine
{

using isa::Instr;
using isa::Major;

namespace
{

/** Paper-style element text, e.g. "f9 := f8 + f0". */
std::string
elementText(const fpu::ElementIssue &e)
{
    const char *sym = "?";
    switch (e.op) {
      case isa::FpOp::Add: sym = "+"; break;
      case isa::FpOp::Sub: sym = "-"; break;
      case isa::FpOp::Mul: sym = "*"; break;
      case isa::FpOp::IntMul: sym = "*i"; break;
      case isa::FpOp::IterStep: sym = "iter"; break;
      case isa::FpOp::Float: sym = "float"; break;
      case isa::FpOp::Truncate: sym = "trunc"; break;
      case isa::FpOp::Recip: sym = "recip"; break;
    }
    char buf[64];
    if (e.op == isa::FpOp::Float || e.op == isa::FpOp::Truncate ||
        e.op == isa::FpOp::Recip) {
        std::snprintf(buf, sizeof(buf), "f%u := %s f%u", e.rr, sym, e.ra);
    } else {
        std::snprintf(buf, sizeof(buf), "f%u := f%u %s f%u", e.rr, e.ra,
                      sym, e.rb);
    }
    return buf;
}

} // anonymous namespace

Machine::Machine(const MachineConfig &config)
    : config_(config), memsys_(config.memory), fpu_(config.fpuLatency)
{
}

void
Machine::loadProgram(assembler::Program program)
{
    program_ = std::move(program);
    resetForRun(true);
}

void
Machine::resetForRun(bool flush_caches)
{
    cpu_.reset();
    fpu_.reset();
    memPortFreeAt_ = 0;
    fetchedPc_ = -1;
    globalStall_ = 0;
    interruptAt_ = UINT64_MAX;
    interruptLen_ = 0;
    stats_ = RunStats{};
    memsys_.resetStats();
    if (flush_caches)
        memsys_.flushAll();
}

uint64_t
Machine::execAlu(isa::AluFunc func, uint64_t a, uint64_t b)
{
    using isa::AluFunc;
    switch (func) {
      case AluFunc::Add: return a + b;
      case AluFunc::Sub: return a - b;
      case AluFunc::And: return a & b;
      case AluFunc::Or: return a | b;
      case AluFunc::Xor: return a ^ b;
      case AluFunc::Sll: return a << (b & 63);
      case AluFunc::Srl: return a >> (b & 63);
      case AluFunc::Sra:
        return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
      case AluFunc::Slt:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b) ? 1 : 0;
      case AluFunc::Sltu: return a < b ? 1 : 0;
      case AluFunc::Mul:
        return static_cast<uint64_t>(static_cast<int64_t>(a) *
                                     static_cast<int64_t>(b));
    }
    panic("execAlu: bad function");
}

bool
Machine::evalBranch(isa::BranchCond cond, uint64_t a, uint64_t b)
{
    using isa::BranchCond;
    switch (cond) {
      case BranchCond::Eq: return a == b;
      case BranchCond::Ne: return a != b;
      case BranchCond::Lt:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b);
      case BranchCond::Ge:
        return static_cast<int64_t>(a) >= static_cast<int64_t>(b);
      case BranchCond::Ltu: return a < b;
      case BranchCond::Geu: return a >= b;
    }
    panic("evalBranch: bad condition");
}

RunStats
Machine::run()
{
    if (program_.code.empty())
        fatal("Machine::run: no program loaded");

    uint64_t cycle = 0;
    for (;;) {
        if (cycle >= config_.maxCycles)
            fatal("Machine::run: exceeded maxCycles");

        // Lock-step global stall: every pipeline is frozen.
        if (globalStall_ > 0) {
            --globalStall_;
            ++stats_.memoryStallCycles;
            ++cycle;
            continue;
        }

        // Done when the CPU has halted and all pipelines drained.
        if (cpu_.halted && !fpu_.busy() && !cpu_.pendingWrites())
            break;

        fpu_.beginCycle();
        cpu_.advance();

        // The occupied ALU IR issues one element per cycle...
        const fpu::ElementEvent ev = fpu_.tryIssueElement();
        if (ev.issued && tracer_) {
            tracer_->record(cycle, TraceKind::FpElement,
                            elementText(ev.element), fpu_.latency());
        }

        // ...while the CPU issues in parallel (unless a modeled
        // interrupt has diverted it to a handler, §2.3.1 — the FPU's
        // element re-issue above is unaffected).
        const bool interrupted =
            cycle >= interruptAt_ && cycle < interruptAt_ + interruptLen_;
        bool cpu_issued = false;
        if (!cpu_.halted && !interrupted)
            cpu_issued = tryCpuIssue(cycle);

        if (ev.issued && cpu_issued)
            ++stats_.dualIssueCycles;

        ++cycle;
    }

    stats_.cycles = cycle > 0 ? cycle - 1 : 0;
    stats_.fpu = fpu_.stats();
    stats_.dataCache = memsys_.dataStats();
    stats_.instrBuffer = memsys_.instrBufferStats();
    stats_.instrCache = memsys_.instrCacheStats();
    return stats_;
}

void
Machine::finishIssue(bool redirect_pending)
{
    ++stats_.instructionsIssued;
    // The issued instruction leaves the fetch stage; the next PC must
    // access the instruction buffer afresh (even if it is the same
    // address, as in a one-instruction loop).
    fetchedPc_ = -1;
    if (redirect_pending) {
        // This instruction was the delay slot of a taken branch.
        cpu_.pc = *cpu_.redirect;
        cpu_.redirect.reset();
    } else {
        ++cpu_.pc;
    }
}

bool
Machine::stallCpu()
{
    ++stats_.cpuStallCycles;
    return false;
}

bool
Machine::handleHazard(unsigned reg, bool include_sources)
{
    if (!fpu_.hazardWithUnissued(reg, include_sources))
        return true;
    switch (config_.hazardPolicy) {
      case HazardPolicy::Fatal:
        fatal("load/store of f" + std::to_string(reg) +
              " races with an unissued vector element (pc=" +
              std::to_string(cpu_.pc) + "); the compiler must break "
              "the vector (paper §2.3.2)");
      case HazardPolicy::Stall:
        stallCpu();
        return false;
      case HazardPolicy::Ignore:
        return true;
    }
    return true;
}

bool
Machine::tryCpuIssue(uint64_t cycle)
{
    if (cpu_.pc >= program_.code.size())
        fatal("Machine: PC ran past the end of the program (missing "
              "halt?)");

    // Single-issue ablation: nothing issues while the IR is busy.
    if (!config_.overlapWithVector && fpu_.aluIrBusy())
        return stallCpu();

    // Instruction fetch through the instruction buffer (charged once
    // per PC value).
    if (fetchedPc_ != static_cast<int64_t>(cpu_.pc)) {
        fetchedPc_ = static_cast<int64_t>(cpu_.pc);
        const unsigned penalty =
            memsys_.instrFetch(static_cast<uint64_t>(cpu_.pc) * 4);
        if (penalty > 0) {
            globalStall_ = penalty;
            if (tracer_) {
                tracer_->record(cycle, TraceKind::GlobalStall,
                                "ifetch miss", penalty);
            }
            return stallCpu();
        }
    }

    const Instr &in = program_.code[cpu_.pc];

    // If a taken branch is outstanding, this instruction is its delay
    // slot; the redirect fires when it completes issue.
    const bool redirect_pending = cpu_.redirect.has_value();

    switch (in.major) {
      case Major::Alu: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rs2))
            return stallCpu();
        cpu_.writeReg(in.rd, execAlu(in.func, cpu_.readReg(in.rs1),
                                     cpu_.readReg(in.rs2)));
        break;
      }
      case Major::AluImm: {
        if (!cpu_.regReady(in.rs1))
            return stallCpu();
        cpu_.writeReg(in.rd,
                      execAlu(in.func, cpu_.readReg(in.rs1),
                              static_cast<uint64_t>(
                                  static_cast<int64_t>(in.imm))));
        break;
      }
      case Major::Lui:
        cpu_.writeReg(in.rd, static_cast<uint64_t>(in.imm)
                                 << isa::kLuiShift);
        break;
      case Major::Ld: {
        if (!cpu_.regReady(in.rs1) || memPortFreeAt_ > cycle)
            return stallCpu();
        const uint64_t addr = cpu_.readReg(in.rs1) +
                              static_cast<int64_t>(in.imm);
        const unsigned penalty = memsys_.dataAccess(addr, false);
        cpu_.scheduleWrite(in.rd, memsys_.mem().read64(addr), 2);
        memPortFreeAt_ = cycle + 1;
        if (penalty > 0)
            globalStall_ = penalty;
        ++stats_.loads;
        break;
      }
      case Major::St: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rd) ||
            memPortFreeAt_ > cycle) {
            return stallCpu();
        }
        const uint64_t addr = cpu_.readReg(in.rs1) +
                              static_cast<int64_t>(in.imm);
        memsys_.mem().write64(addr, cpu_.readReg(in.rd));
        const unsigned penalty = memsys_.dataAccess(addr, true);
        memPortFreeAt_ = cycle + config_.storeCycles;
        if (penalty > 0)
            globalStall_ = penalty;
        ++stats_.stores;
        break;
      }
      case Major::Ldf: {
        if (!cpu_.regReady(in.rs1) || memPortFreeAt_ > cycle)
            return stallCpu();
        if (fpu_.transferStall(in.fr))
            return stallCpu();
        if (fpu_.currentElementInterlock(in.fr, true))
            return stallCpu();
        if (!handleHazard(in.fr, true))
            return false;
        const uint64_t addr = cpu_.readReg(in.rs1) +
                              static_cast<int64_t>(in.imm);
        const unsigned penalty = memsys_.dataAccess(addr, false);
        fpu_.issueLoad(in.fr, memsys_.mem().read64(addr));
        memPortFreeAt_ = cycle + 1;
        if (penalty > 0)
            globalStall_ = penalty;
        ++stats_.fpLoads;
        break;
      }
      case Major::Stf: {
        if (!cpu_.regReady(in.rs1) || memPortFreeAt_ > cycle)
            return stallCpu();
        if (fpu_.transferStall(in.fr))
            return stallCpu();
        if (fpu_.currentElementInterlock(in.fr, false))
            return stallCpu();
        if (!handleHazard(in.fr, false))
            return false;
        const uint64_t addr = cpu_.readReg(in.rs1) +
                              static_cast<int64_t>(in.imm);
        memsys_.mem().write64(addr, fpu_.readForTransfer(in.fr));
        const unsigned penalty = memsys_.dataAccess(addr, true);
        memPortFreeAt_ = cycle + config_.storeCycles;
        if (penalty > 0)
            globalStall_ = penalty;
        ++stats_.fpStores;
        break;
      }
      case Major::FpAlu: {
        if (!fpu_.canTransferAlu())
            return stallCpu();
        fpu_.transferAlu(in.fp);
        if (tracer_) {
            tracer_->record(cycle, TraceKind::FpTransfer,
                            in.fp.toString());
        }
        const fpu::ElementEvent ev = fpu_.tryIssueElement();
        if (ev.issued && tracer_) {
            tracer_->record(cycle, TraceKind::FpElement,
                            elementText(ev.element), fpu_.latency());
        }
        ++stats_.fpAluTransfers;
        break;
      }
      case Major::Branch: {
        if (!cpu_.regReady(in.rs1) || !cpu_.regReady(in.rs2))
            return stallCpu();
        if (cpu_.redirect)
            fatal("branch in a branch delay slot (pc=" +
                  std::to_string(cpu_.pc) + ")");
        ++stats_.branches;
        if (evalBranch(in.cond, cpu_.readReg(in.rs1),
                       cpu_.readReg(in.rs2))) {
            ++stats_.takenBranches;
            cpu_.redirect = cpu_.pc + in.imm;
        }
        break;
      }
      case Major::Jump: {
        if (cpu_.redirect)
            fatal("jump in a branch delay slot (pc=" +
                  std::to_string(cpu_.pc) + ")");
        switch (in.jkind) {
          case isa::JumpKind::J:
            cpu_.redirect = cpu_.pc + in.imm;
            break;
          case isa::JumpKind::Jal:
            cpu_.writeReg(in.rd, cpu_.pc + 2);
            cpu_.redirect = cpu_.pc + in.imm;
            break;
          case isa::JumpKind::Jr:
            if (!cpu_.regReady(in.rs1))
                return stallCpu();
            cpu_.redirect =
                static_cast<uint32_t>(cpu_.readReg(in.rs1));
            break;
          case isa::JumpKind::Jalr: {
            if (!cpu_.regReady(in.rs1))
                return stallCpu();
            const uint32_t target =
                static_cast<uint32_t>(cpu_.readReg(in.rs1));
            cpu_.writeReg(in.rd, cpu_.pc + 2);
            cpu_.redirect = target;
            break;
          }
        }
        ++stats_.branches;
        ++stats_.takenBranches;
        break;
      }
      case Major::Mvfc: {
        if (fpu_.transferStall(in.fr))
            return stallCpu();
        if (fpu_.currentElementInterlock(in.fr, false))
            return stallCpu();
        if (!handleHazard(in.fr, false))
            return false;
        cpu_.scheduleWrite(in.rd, fpu_.readForTransfer(in.fr), 2);
        break;
      }
      case Major::Halt:
        cpu_.halted = true;
        ++stats_.instructionsIssued;
        if (tracer_)
            tracer_->record(cycle, TraceKind::CpuIssue, "halt");
        return true;
      default:
        fatal("Machine: unknown opcode at pc=" + std::to_string(cpu_.pc));
    }

    if (tracer_ && in.major != Major::FpAlu) {
        tracer_->record(cycle, TraceKind::CpuIssue,
                        isa::disassemble(in));
    }
    finishIssue(redirect_pending);
    return true;
}

} // namespace mtfpu::machine
