#include "memory/main_memory.hh"

#include <algorithm>
#include <cstring>

namespace mtfpu::memory
{

MainMemory::MainMemory(size_t size)
    : data_((size + 7) / 8, 0)
{
}

double
MainMemory::readDouble(uint64_t addr) const
{
    const uint64_t v = read64(addr);
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

void
MainMemory::writeDouble(uint64_t addr, double value)
{
    uint64_t v;
    std::memcpy(&v, &value, sizeof(v));
    write64(addr, v);
}

void
MainMemory::clear()
{
    std::fill(data_.begin(), data_.end(), 0);
}

} // namespace mtfpu::memory
