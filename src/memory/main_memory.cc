#include "memory/main_memory.hh"

#include <cstring>

#include "common/log.hh"

namespace mtfpu::memory
{

MainMemory::MainMemory(size_t size)
    : data_((size + 7) / 8, 0)
{
}

void
MainMemory::check(uint64_t addr) const
{
    if (addr % 8 != 0)
        fatal("MainMemory: unaligned 64-bit access at " +
              std::to_string(addr));
    if (addr / 8 >= data_.size())
        fatal("MainMemory: access past end of memory at " +
              std::to_string(addr));
}

uint64_t
MainMemory::read64(uint64_t addr) const
{
    check(addr);
    return data_[addr / 8];
}

void
MainMemory::write64(uint64_t addr, uint64_t value)
{
    check(addr);
    data_[addr / 8] = value;
}

double
MainMemory::readDouble(uint64_t addr) const
{
    const uint64_t v = read64(addr);
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

void
MainMemory::writeDouble(uint64_t addr, double value)
{
    uint64_t v;
    std::memcpy(&v, &value, sizeof(v));
    write64(addr, v);
}

void
MainMemory::clear()
{
    std::fill(data_.begin(), data_.end(), 0);
}

} // namespace mtfpu::memory
