#include "memory/main_memory.hh"

#include <algorithm>
#include <cstring>

namespace mtfpu::memory
{

MainMemory::MainMemory(size_t size)
    : data_((size + 7) / 8, 0)
{
}

double
MainMemory::readDouble(uint64_t addr) const
{
    const uint64_t v = read64(addr);
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

void
MainMemory::writeDouble(uint64_t addr, double value)
{
    uint64_t v;
    std::memcpy(&v, &value, sizeof(v));
    write64(addr, v);
}

void
MainMemory::clear()
{
    std::fill(data_.begin(), data_.end(), 0);
}

void
MainMemory::saveState(ByteWriter &out) const
{
    out.u64(data_.size());
    uint64_t nonzero = 0;
    for (const uint64_t w : data_) {
        if (w != 0)
            ++nonzero;
    }
    out.u64(nonzero);
    for (uint64_t i = 0; i < data_.size(); ++i) {
        if (data_[i] != 0) {
            out.u64(i);
            out.u64(data_[i]);
        }
    }
}

void
MainMemory::restoreState(ByteReader &in)
{
    const uint64_t words = in.u64();
    if (words != data_.size()) {
        fatal(ErrCode::BadSnapshot,
              "MainMemory: snapshot holds " + std::to_string(words * 8) +
                  " bytes, machine has " +
                  std::to_string(data_.size() * 8));
    }
    std::fill(data_.begin(), data_.end(), 0);
    const uint64_t nonzero = in.u64();
    for (uint64_t i = 0; i < nonzero; ++i) {
        const uint64_t index = in.u64();
        const uint64_t value = in.u64();
        if (index >= data_.size())
            fatal(ErrCode::BadSnapshot,
                  "MainMemory: snapshot word index out of range");
        data_[index] = value;
    }
}

} // namespace mtfpu::memory
