#include "memory/memory_system.hh"

namespace mtfpu::memory
{

MemorySystem::MemorySystem(const MemoryConfig &config)
    : config_(config),
      mem_(config.memBytes),
      dcache_(config.dataCache),
      ibuf_(config.instrBuffer),
      icache_(config.instrCache)
{
}

unsigned
MemorySystem::dataAccess(uint64_t addr, bool is_write)
{
    if (!config_.modelCaches)
        return 0;
    return dcache_.access(addr, is_write);
}

unsigned
MemorySystem::instrFetch(uint64_t addr)
{
    if (!config_.modelCaches)
        return 0;
    unsigned penalty = ibuf_.access(addr, false);
    if (penalty != 0) {
        // The buffer refills from the external instruction cache; an
        // external miss adds its own penalty on top.
        penalty += icache_.access(addr, false);
    }
    return penalty;
}

void
MemorySystem::flushAll()
{
    dcache_.flush();
    ibuf_.flush();
    icache_.flush();
}

void
MemorySystem::resetStats()
{
    dcache_.resetStats();
    ibuf_.resetStats();
    icache_.resetStats();
}

void
MemorySystem::saveState(ByteWriter &out) const
{
    mem_.saveState(out);
    dcache_.saveState(out);
    ibuf_.saveState(out);
    icache_.saveState(out);
}

void
MemorySystem::restoreState(ByteReader &in)
{
    mem_.restoreState(in);
    dcache_.restoreState(in);
    ibuf_.restoreState(in);
    icache_.restoreState(in);
}

} // namespace mtfpu::memory
