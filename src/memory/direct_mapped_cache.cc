#include "memory/direct_mapped_cache.hh"

#include "common/log.hh"

namespace mtfpu::memory
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

DirectMappedCache::DirectMappedCache(const CacheConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.sizeBytes) || !isPowerOfTwo(config.lineBytes))
        fatal("DirectMappedCache: size and line must be powers of two");
    if (config.lineBytes > config.sizeBytes)
        fatal("DirectMappedCache: line larger than cache");
    lines_.resize(config.sizeBytes / config.lineBytes);
}

uint64_t
DirectMappedCache::lineIndex(uint64_t addr) const
{
    return (addr / config_.lineBytes) % lines_.size();
}

uint64_t
DirectMappedCache::tagOf(uint64_t addr) const
{
    return addr / config_.lineBytes / lines_.size();
}

unsigned
DirectMappedCache::access(uint64_t addr, bool is_write)
{
    Line &line = lines_[lineIndex(addr)];
    const uint64_t tag = tagOf(addr);

    if (line.valid && line.tag == tag) {
        ++stats_.hits;
        return 0;
    }

    ++stats_.misses;
    if (!is_write || config_.writeAllocate) {
        line.valid = true;
        line.tag = tag;
    }
    return config_.missPenalty;
}

bool
DirectMappedCache::probe(uint64_t addr) const
{
    const Line &line = lines_[lineIndex(addr)];
    return line.valid && line.tag == tagOf(addr);
}

void
DirectMappedCache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

} // namespace mtfpu::memory
