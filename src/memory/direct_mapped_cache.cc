#include "memory/direct_mapped_cache.hh"

#include <bit>

#include "common/log.hh"

namespace mtfpu::memory
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

DirectMappedCache::DirectMappedCache(const CacheConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.sizeBytes) || !isPowerOfTwo(config.lineBytes))
        fatal("DirectMappedCache: size and line must be powers of two");
    if (config.lineBytes > config.sizeBytes)
        fatal("DirectMappedCache: line larger than cache");
    lines_.resize(config.sizeBytes / config.lineBytes);
    lineShift_ = static_cast<unsigned>(std::countr_zero(config.lineBytes));
    indexMask_ = lines_.size() - 1;
    tagShift_ = lineShift_ +
                static_cast<unsigned>(std::countr_zero(lines_.size()));
}

void
DirectMappedCache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

} // namespace mtfpu::memory
