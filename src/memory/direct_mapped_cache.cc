#include "memory/direct_mapped_cache.hh"

#include <bit>

#include "common/log.hh"

namespace mtfpu::memory
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

DirectMappedCache::DirectMappedCache(const CacheConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.sizeBytes) || !isPowerOfTwo(config.lineBytes))
        fatal("DirectMappedCache: size and line must be powers of two");
    if (config.lineBytes > config.sizeBytes)
        fatal("DirectMappedCache: line larger than cache");
    lines_.resize(config.sizeBytes / config.lineBytes);
    lineShift_ = static_cast<unsigned>(std::countr_zero(config.lineBytes));
    indexMask_ = lines_.size() - 1;
    tagShift_ = lineShift_ +
                static_cast<unsigned>(std::countr_zero(lines_.size()));
}

void
DirectMappedCache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

void
DirectMappedCache::saveState(ByteWriter &out) const
{
    out.u64(lines_.size());
    uint64_t valid = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++valid;
    }
    out.u64(valid);
    for (uint64_t i = 0; i < lines_.size(); ++i) {
        if (lines_[i].valid) {
            out.u64(i);
            out.u64(lines_[i].tag);
        }
    }
    out.u64(stats_.hits);
    out.u64(stats_.misses);
}

void
DirectMappedCache::restoreState(ByteReader &in)
{
    const uint64_t numLines = in.u64();
    if (numLines != lines_.size()) {
        fatal(ErrCode::BadSnapshot,
              "DirectMappedCache: snapshot has " +
                  std::to_string(numLines) + " lines, cache has " +
                  std::to_string(lines_.size()));
    }
    for (Line &line : lines_)
        line = Line{};
    const uint64_t valid = in.u64();
    for (uint64_t i = 0; i < valid; ++i) {
        const uint64_t index = in.u64();
        const uint64_t tag = in.u64();
        if (index >= lines_.size())
            fatal(ErrCode::BadSnapshot,
                  "DirectMappedCache: snapshot line index out of range");
        lines_[index] = Line{true, tag};
    }
    stats_.hits = in.u64();
    stats_.misses = in.u64();
}

} // namespace mtfpu::memory
