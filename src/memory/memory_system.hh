/**
 * @file
 * The memory-system composition of Figure 1: main memory, the 64 KB
 * shared data cache, and the instruction path (2 KB on-chip
 * instruction buffer backed by the 64 KB external instruction cache).
 *
 * The caches are timing models; data always moves through MainMemory.
 * Instruction and data spaces are modeled Harvard-style: instruction
 * fetches address a separate image and only touch the instruction-path
 * caches.
 */

#ifndef MTFPU_MEMORY_MEMORY_SYSTEM_HH
#define MTFPU_MEMORY_MEMORY_SYSTEM_HH

#include "memory/direct_mapped_cache.hh"
#include "memory/main_memory.hh"

namespace mtfpu::memory
{

/** Full memory-hierarchy configuration. */
struct MemoryConfig
{
    /** 64 KB direct-mapped, 16-byte lines, 14-cycle miss (paper §2). */
    CacheConfig dataCache{64 * 1024, 16, 14, true};
    /**
     * 2 KB on-chip instruction buffer (Figure 1). Its refill penalty
     * from the external instruction cache is a calibration assumption
     * (see DESIGN.md).
     */
    CacheConfig instrBuffer{2 * 1024, 16, 4, true};
    /** 64 KB external instruction cache; misses go to memory. */
    CacheConfig instrCache{64 * 1024, 16, 14, true};
    /** Main-memory size in bytes. */
    size_t memBytes = 4u << 20;
    /** If false, every access hits (ideal-memory ablation). */
    bool modelCaches = true;

    bool operator==(const MemoryConfig &) const = default;
};

/** The composed hierarchy. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config = MemoryConfig{});

    /** Data-side access; returns the stall penalty in cycles. */
    unsigned dataAccess(uint64_t addr, bool is_write);

    /**
     * Instruction fetch of the 32-bit word at instruction byte
     * address @p addr; returns the stall penalty in cycles.
     */
    unsigned instrFetch(uint64_t addr);

    /** Invalidate every cache level (cold start). */
    void flushAll();

    /** Reset hit/miss counters without invalidating. */
    void resetStats();

    MainMemory &mem() { return mem_; }
    const MainMemory &mem() const { return mem_; }

    /** The data-cache tag model (fault-injection site). */
    DirectMappedCache &dataCache() { return dcache_; }

    const CacheStats &dataStats() const { return dcache_.stats(); }
    const CacheStats &instrBufferStats() const { return ibuf_.stats(); }
    const CacheStats &instrCacheStats() const { return icache_.stats(); }

    const MemoryConfig &config() const { return config_; }

    /** Serialize memory contents and every cache's tag state. */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(); config must match. */
    void restoreState(ByteReader &in);

  private:
    MemoryConfig config_;
    MainMemory mem_;
    DirectMappedCache dcache_;
    DirectMappedCache ibuf_;
    DirectMappedCache icache_;
};

} // namespace mtfpu::memory

#endif // MTFPU_MEMORY_MEMORY_SYSTEM_HH
