/**
 * @file
 * Direct-mapped cache timing model. The MultiTitan has a 64 KB
 * direct-mapped data cache with 16-byte lines and a 14-cycle miss
 * penalty, shared by the CPU and FPU (paper §2, Figure 1), and a 2 KB
 * on-chip instruction buffer backed by a 64 KB external instruction
 * cache. This is a timing/tag model only — data always comes from
 * MainMemory (the caches are never incoherent in a uniprocessor).
 */

#ifndef MTFPU_MEMORY_DIRECT_MAPPED_CACHE_HH
#define MTFPU_MEMORY_DIRECT_MAPPED_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/bytestream.hh"

namespace mtfpu::memory
{

/** Per-cache access statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    bool operator==(const CacheStats &) const = default;

    uint64_t accesses() const { return hits + misses; }

    /** Miss ratio in [0, 1]; 0 when there were no accesses. */
    double
    missRatio() const
    {
        return accesses() == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses());
    }
};

/** Configuration for one cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 64 * 1024;
    uint64_t lineBytes = 16;
    unsigned missPenalty = 14;
    /** Allocate lines on write misses (write-back style). */
    bool writeAllocate = true;

    bool operator==(const CacheConfig &) const = default;
};

/**
 * A direct-mapped tag array. access() returns the stall penalty in
 * cycles (0 on a hit).
 */
class DirectMappedCache
{
  public:
    explicit DirectMappedCache(const CacheConfig &config);

    /**
     * Perform one access. Inline, with the power-of-two line/size
     * geometry precomputed into shifts at construction — this runs
     * once per instruction fetch and once per data reference, and a
     * hardware division per lookup dominated the simulator profile.
     *
     * @param addr Byte address.
     * @param is_write True for stores.
     * @return Stall penalty in cycles (0 on a hit).
     */
    unsigned
    access(uint64_t addr, bool is_write)
    {
        Line &line = lines_[lineIndex(addr)];
        const uint64_t tag = tagOf(addr);

        if (line.valid && line.tag == tag) {
            ++stats_.hits;
            return 0;
        }

        ++stats_.misses;
        if (!is_write || config_.writeAllocate) {
            line.valid = true;
            line.tag = tag;
        }
        return config_.missPenalty;
    }

    /** True if @p addr would hit right now (no state change). */
    bool
    probe(uint64_t addr) const
    {
        const Line &line = lines_[lineIndex(addr)];
        return line.valid && line.tag == tagOf(addr);
    }

    /** Invalidate all lines (cold-start). */
    void flush();

    /** Number of lines in the tag array. */
    uint64_t numLines() const { return lines_.size(); }

    /**
     * Fault-injection hook: XOR @p tag_xor into a line's stored tag
     * and optionally toggle its valid bit. The cache is a timing/tag
     * model, so a corrupted line perturbs hit/miss behavior (and thus
     * cycle counts) but can never corrupt data — the fault-campaign
     * harness relies on that distinction when classifying outcomes.
     * No-op on the access fast path: only an injector calls this.
     */
    void
    corruptLine(uint64_t index, uint64_t tag_xor, bool flip_valid)
    {
        Line &line = lines_[index % lines_.size()];
        line.tag ^= tag_xor;
        if (flip_valid)
            line.valid = !line.valid;
    }

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }
    const CacheConfig &config() const { return config_; }

    /** Serialize valid lines (sparsely) and the statistics. */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(ByteReader &in);

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
    };

    uint64_t
    lineIndex(uint64_t addr) const
    {
        return (addr >> lineShift_) & indexMask_;
    }

    uint64_t tagOf(uint64_t addr) const { return addr >> tagShift_; }

    CacheConfig config_;
    std::vector<Line> lines_;
    CacheStats stats_;
    // Precomputed geometry (sizes are validated powers of two).
    unsigned lineShift_ = 0; // log2(lineBytes)
    unsigned tagShift_ = 0;  // log2(lineBytes * numLines)
    uint64_t indexMask_ = 0; // numLines - 1
};

} // namespace mtfpu::memory

#endif // MTFPU_MEMORY_DIRECT_MAPPED_CACHE_HH
