/**
 * @file
 * Flat byte-addressed main memory with 64-bit accessors. The
 * MultiTitan's data paths are 64 bits wide; all FPU loads and stores
 * move aligned 64-bit words.
 */

#ifndef MTFPU_MEMORY_MAIN_MEMORY_HH
#define MTFPU_MEMORY_MAIN_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytestream.hh"
#include "common/log.hh"

namespace mtfpu::memory
{

/** Simple flat memory; addresses are byte addresses. */
class MainMemory
{
  public:
    /** Create a memory of @p size bytes (default 4 MB). */
    explicit MainMemory(size_t size = 4u << 20);

    /** Memory size in bytes (data_ holds 64-bit words). */
    size_t size() const { return data_.size() * 8; }

    // read64/write64 are inline: they run once per simulated load or
    // store, and the bounds check folds into the word-index shift.

    /** Read an aligned 64-bit word; fatal() on misalignment/range. */
    uint64_t
    read64(uint64_t addr) const
    {
        check(addr);
        return data_[addr / 8];
    }

    /** Write an aligned 64-bit word; fatal() on misalignment/range. */
    void
    write64(uint64_t addr, uint64_t value)
    {
        check(addr);
        data_[addr / 8] = value;
    }

    /** Convenience: read a double at @p addr. */
    double readDouble(uint64_t addr) const;

    /** Convenience: write a double at @p addr. */
    void writeDouble(uint64_t addr, double value);

    /** Zero all of memory. */
    void clear();

    /** Serialize contents sparsely (only nonzero words are stored). */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(); sizes must match. */
    void restoreState(ByteReader &in);

  private:
    void
    check(uint64_t addr) const
    {
        if (addr % 8 != 0)
            fatal(ErrCode::MemAlign,
                  "MainMemory: unaligned 64-bit access at " +
                      std::to_string(addr));
        if (addr / 8 >= data_.size())
            fatal(ErrCode::MemRange,
                  "MainMemory: access past end of memory at " +
                      std::to_string(addr) + " (size " +
                      std::to_string(data_.size() * 8) + ")");
    }

    std::vector<uint64_t> data_; // word-granular backing store
};

} // namespace mtfpu::memory

#endif // MTFPU_MEMORY_MAIN_MEMORY_HH
