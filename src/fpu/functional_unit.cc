#include "fpu/functional_unit.hh"

#include <algorithm>

#include "common/log.hh"
#include "fpu/register_file.hh"
#include "fpu/scoreboard.hh"

namespace mtfpu::fpu
{

FunctionalUnits::FunctionalUnits(unsigned latency)
    : latency_(latency)
{
    if (latency == 0)
        fatal("FunctionalUnits: latency must be at least 1");
}

void
FunctionalUnits::issue(isa::FpOp op, unsigned reg, uint64_t value,
                       const softfp::Flags &flags, uint64_t seq)
{
    inflight_.push_back(PendingOp{latency_, static_cast<uint8_t>(reg),
                                  value, flags, op, seq});
}

const std::vector<PendingOp> &
FunctionalUnits::advanceSlow(RegisterFile &regs, Scoreboard &sb)
{
    retired_.clear();
    for (auto &op : inflight_) {
        if (--op.remaining == 0) {
            regs.write(op.reg, op.value);
            sb.release(op.reg);
            retired_.push_back(op);
        }
    }
    std::erase_if(inflight_,
                  [](const PendingOp &op) { return op.remaining == 0; });
    return retired_;
}

void
FunctionalUnits::saveState(ByteWriter &out) const
{
    out.u32(static_cast<uint32_t>(inflight_.size()));
    for (const PendingOp &op : inflight_) {
        out.u32(op.remaining);
        out.u8(op.reg);
        out.u64(op.value);
        out.u8(op.flags.toBits());
        out.u8(static_cast<uint8_t>(op.op));
        out.u64(op.seq);
    }
}

void
FunctionalUnits::restoreState(ByteReader &in)
{
    inflight_.clear();
    retired_.clear();
    const uint32_t n = in.u32();
    inflight_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        PendingOp op;
        op.remaining = in.u32();
        op.reg = in.u8();
        op.value = in.u64();
        op.flags = softfp::Flags::fromBits(in.u8());
        op.op = static_cast<isa::FpOp>(in.u8());
        op.seq = in.u64();
        inflight_.push_back(op);
    }
}

} // namespace mtfpu::fpu
