#include "fpu/functional_unit.hh"

#include <algorithm>

#include "common/log.hh"
#include "fpu/register_file.hh"
#include "fpu/scoreboard.hh"

namespace mtfpu::fpu
{

FunctionalUnits::FunctionalUnits(unsigned latency)
    : latency_(latency)
{
    if (latency == 0)
        fatal("FunctionalUnits: latency must be at least 1");
}

void
FunctionalUnits::issue(isa::FpOp op, unsigned reg, uint64_t value,
                       const softfp::Flags &flags, uint64_t seq)
{
    inflight_.push_back(PendingOp{latency_, static_cast<uint8_t>(reg),
                                  value, flags, op, seq});
}

const std::vector<PendingOp> &
FunctionalUnits::advanceSlow(RegisterFile &regs, Scoreboard &sb)
{
    retired_.clear();
    for (auto &op : inflight_) {
        if (--op.remaining == 0) {
            regs.write(op.reg, op.value);
            sb.release(op.reg);
            retired_.push_back(op);
        }
    }
    std::erase_if(inflight_,
                  [](const PendingOp &op) { return op.remaining == 0; });
    return retired_;
}

} // namespace mtfpu::fpu
