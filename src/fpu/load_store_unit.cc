#include "fpu/load_store_unit.hh"

#include <algorithm>

#include "fpu/register_file.hh"

namespace mtfpu::fpu
{

void
LoadStoreUnit::issueLoad(unsigned reg, uint64_t value)
{
    pending_.push_back(PendingLoad{1, static_cast<uint8_t>(reg), value});
}

void
LoadStoreUnit::advanceSlow(RegisterFile &regs)
{
    for (auto &load : pending_) {
        if (--load.remaining == 0)
            regs.write(load.reg, load.value);
    }
    std::erase_if(pending_,
                  [](const PendingLoad &l) { return l.remaining == 0; });
}

bool
LoadStoreUnit::pendingTo(unsigned reg) const
{
    return std::any_of(pending_.begin(), pending_.end(),
                       [reg](const PendingLoad &l) {
                           return l.reg == reg;
                       });
}

} // namespace mtfpu::fpu
