#include "fpu/load_store_unit.hh"

#include <algorithm>

#include "fpu/register_file.hh"

namespace mtfpu::fpu
{

void
LoadStoreUnit::issueLoad(unsigned reg, uint64_t value)
{
    pending_.push_back(PendingLoad{1, static_cast<uint8_t>(reg), value});
}

void
LoadStoreUnit::advanceSlow(RegisterFile &regs)
{
    for (auto &load : pending_) {
        if (--load.remaining == 0)
            regs.write(load.reg, load.value);
    }
    std::erase_if(pending_,
                  [](const PendingLoad &l) { return l.remaining == 0; });
}

void
LoadStoreUnit::saveState(ByteWriter &out) const
{
    out.u32(static_cast<uint32_t>(pending_.size()));
    for (const PendingLoad &l : pending_) {
        out.u32(l.remaining);
        out.u8(l.reg);
        out.u64(l.value);
    }
}

void
LoadStoreUnit::restoreState(ByteReader &in)
{
    pending_.clear();
    const uint32_t n = in.u32();
    pending_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        PendingLoad l;
        l.remaining = in.u32();
        l.reg = in.u8();
        l.value = in.u64();
        pending_.push_back(l);
    }
}

bool
LoadStoreUnit::pendingTo(unsigned reg) const
{
    return std::any_of(pending_.begin(), pending_.end(),
                       [reg](const PendingLoad &l) {
                           return l.reg == reg;
                       });
}

} // namespace mtfpu::fpu
