/**
 * @file
 * The unified vector/scalar register file: 52 general-purpose 64-bit
 * registers (paper §2.1). Vectors are simply runs of consecutive
 * registers; there is no separate vector register bank. The file has
 * four ports (A, B, R, M) in hardware; port arbitration is modeled by
 * the issue logic, not here.
 *
 * read() and write() are inline — they run several times per
 * simulated cycle on the element issue and retire paths.
 */

#ifndef MTFPU_FPU_REGISTER_FILE_HH
#define MTFPU_FPU_REGISTER_FILE_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/log.hh"
#include "isa/fpu_instr.hh"

namespace mtfpu::fpu
{

/** 52 x 64-bit storage with bounds-checked access. */
class RegisterFile
{
  public:
    /** Read register @p reg. */
    uint64_t
    read(unsigned reg) const
    {
        if (reg >= isa::kNumFpuRegs)
            fatal(ErrCode::RegFileRange,
                  "RegisterFile: read of f" + std::to_string(reg));
        return regs_[reg];
    }

    /** Write register @p reg. */
    void
    write(unsigned reg, uint64_t value)
    {
        if (reg >= isa::kNumFpuRegs)
            fatal(ErrCode::RegFileRange,
                  "RegisterFile: write of f" + std::to_string(reg));
        regs_[reg] = value;
    }

    /** Read as a host double (same bit layout). */
    double readDouble(unsigned reg) const;

    /** Write from a host double. */
    void writeDouble(unsigned reg, double value);

    /** Zero every register. */
    void clear() { regs_.fill(0); }

  private:
    std::array<uint64_t, isa::kNumFpuRegs> regs_{};
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_REGISTER_FILE_HH
