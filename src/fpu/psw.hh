/**
 * @file
 * The FPU program status word. It lives conceptually in the register
 * file (paper §2); it accumulates IEEE exception flags and records the
 * destination register specifier of the first vector element to
 * overflow (paper §2.3.1: "Vector instructions that overflow on one
 * element discard all remaining elements after the overflow. The
 * destination register specifier of the first element to overflow is
 * saved in the PSW.").
 */

#ifndef MTFPU_FPU_PSW_HH
#define MTFPU_FPU_PSW_HH

#include <cstdint>

#include "softfp/fp64.hh"

namespace mtfpu::fpu
{

/** Accumulated FPU status. */
struct Psw
{
    softfp::Flags flags;
    /** True once a vector element has overflowed. */
    bool overflowValid = false;
    /** Destination specifier of the first overflowing element. */
    uint8_t overflowReg = 0;

    /** Record an overflow (only the first one sticks). */
    void
    recordOverflow(unsigned reg)
    {
        if (!overflowValid) {
            overflowValid = true;
            overflowReg = static_cast<uint8_t>(reg);
        }
    }

    /** Clear all status (e.g. between benchmark runs). */
    void
    clear()
    {
        flags = softfp::Flags{};
        overflowValid = false;
        overflowReg = 0;
    }
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_PSW_HH
