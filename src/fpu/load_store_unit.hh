/**
 * @file
 * The FPU load/store instruction register path (paper §2). FPU loads
 * and stores arrive over the 10-bit coprocessor bus and move 64-bit
 * words between the shared data cache and the register file's M port,
 * in parallel with ALU element issue. A load's data is written at the
 * end of the issue cycle and is visible to FPU operations issuing the
 * following cycle.
 */

#ifndef MTFPU_FPU_LOAD_STORE_UNIT_HH
#define MTFPU_FPU_LOAD_STORE_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/bytestream.hh"

namespace mtfpu::fpu
{

class RegisterFile;

/** In-flight FPU load writes. */
class LoadStoreUnit
{
  public:
    /**
     * Enter a load issued this cycle; its data reaches the register
     * file at the start of the next active cycle.
     */
    void issueLoad(unsigned reg, uint64_t value);

    /** Apply writes that have completed; call once per active cycle.
     *  Inline empty fast path: most cycles carry no in-flight load. */
    void
    advance(RegisterFile &regs)
    {
        if (pending_.empty())
            return;
        advanceSlow(regs);
    }

    /** True if a load is still in flight to @p reg. */
    bool pendingTo(unsigned reg) const;

    /** True if any load is in flight. */
    bool busy() const { return !pending_.empty(); }

    /** Drop all in-flight state (reset). */
    void clear() { pending_.clear(); }

    /** Serialize the in-flight load writes. */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(). */
    void restoreState(ByteReader &in);

  private:
    struct PendingLoad
    {
        unsigned remaining;
        uint8_t reg;
        uint64_t value;
    };

    /** Out-of-line tail of advance(): retire due load writes. */
    void advanceSlow(RegisterFile &regs);

    std::vector<PendingLoad> pending_;
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_LOAD_STORE_UNIT_HH
