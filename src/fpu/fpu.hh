/**
 * @file
 * The MultiTitan FPU model: the unified vector/scalar register file,
 * the reservation-table scoreboard, the three 3-cycle pipelined
 * functional units, the ALU instruction register with vector element
 * re-issue, the load/store path, and the PSW.
 *
 * The Machine drives it cycle by cycle:
 *
 *     fpu.beginCycle();               // writebacks (active cycles only)
 *     fpu.tryIssueElement();          // issue from the occupied ALU IR
 *     ...
 *     if (fpu.canTransferAlu()) {     // CPU-side FPALU transfer
 *         fpu.transferAlu(instr);
 *         fpu.tryIssueElement();      // first element, same cycle
 *     }
 *
 * During a lock-step global stall (cache miss) beginCycle is not
 * called, freezing every pipeline in place.
 */

#ifndef MTFPU_FPU_FPU_HH
#define MTFPU_FPU_FPU_HH

#include <array>
#include <cstdint>

#include "fpu/functional_unit.hh"
#include "fpu/load_store_unit.hh"
#include "fpu/psw.hh"
#include "fpu/register_file.hh"
#include "fpu/scoreboard.hh"
#include "fpu/vector_issue.hh"
#include "softfp/backend.hh"

namespace mtfpu::fpu
{

/** Counters exposed to the Machine statistics. */
struct FpuStats
{
    uint64_t elementsIssued = 0;
    uint64_t vectorInstructions = 0; // FPALU transfers with VL > 1
    uint64_t scalarInstructions = 0; // FPALU transfers with VL == 1
    uint64_t sourceStallCycles = 0;
    uint64_t destStallCycles = 0;
    uint64_t squashedElements = 0;
    std::array<uint64_t, 8> opCounts{}; // indexed by isa::FpOp

    bool operator==(const FpuStats &) const = default;
};

/** Result of one element-issue attempt. */
struct ElementEvent
{
    bool issued = false;
    ElementIssue element{}; // valid when issued
};

/** The FPU coprocessor. */
class Fpu
{
  public:
    /**
     * @param latency Functional-unit latency (3 in the paper).
     * @param backend softfp implementation executing elements; both
     *        choices are bit-identical (softfp/backend.hh).
     */
    explicit Fpu(unsigned latency = kFpuLatency,
                 softfp::Backend backend = softfp::Backend::Soft);

    /**
     * Start an active cycle: retire finished ALU operations (merging
     * their flags into the PSW and applying overflow squash) and
     * complete in-flight load writes. Returns the operations retired
     * this cycle so the Machine can publish them to its observers;
     * the reference is into a buffer reused on the next active cycle.
     * Inline: runs every active cycle, usually with nothing retiring.
     */
    const std::vector<PendingOp> &
    beginCycle()
    {
        elementIssuedThisCycle_ = false;
        const std::vector<PendingOp> &retired = units_.advance(regs_, sb_);
        if (!retired.empty())
            retirePswState(retired);
        lsu_.advance(regs_);
        return retired;
    }

    /** Attempt to issue one vector element from the ALU IR.
     *  Inline empty fast path: the IR is idle in scalar-heavy code. */
    ElementEvent
    tryIssueElement()
    {
        if (elementIssuedThisCycle_ || !ir_.busy())
            return ElementEvent{};
        return tryIssueElementSlow();
    }

    /** True if the CPU may transfer an FPU ALU instruction now. */
    bool canTransferAlu() const;

    /** Transfer an FPU ALU instruction into the ALU IR. */
    void transferAlu(const isa::FpuAluInstr &instr);

    /** True while the ALU IR is occupied. */
    bool aluIrBusy() const { return ir_.busy(); }

    /**
     * True if an FPU load/store/mvfc of register @p reg must stall
     * (outstanding ALU write reservation).
     */
    bool transferStall(unsigned reg) const;

    /** Enter an FPU load (data visible next cycle). */
    void issueLoad(unsigned reg, uint64_t value);

    /** Read a register for a store or mvfc (caller checked stalls). */
    uint64_t readForTransfer(unsigned reg) const;

    /**
     * Hardware execution constraint (§2.3.2): true if @p reg is an
     * operand of the current, not-yet-issued element in the ALU IR —
     * a following load/store/mvfc must stall until it issues.
     */
    bool currentElementInterlock(unsigned reg,
                                 bool include_sources) const;

    /**
     * Compiler-responsibility hazard (§2.3.2): true if @p reg belongs
     * to an unissued element beyond the current one. The MultiTitan
     * hardware does not interlock this case; the simulator flags it
     * per the configured policy.
     */
    bool hazardWithUnissued(unsigned reg, bool include_sources) const;

    /** True if any ALU or load operation is still in flight. */
    bool busy() const;

    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }
    Psw &psw() { return psw_; }
    const Psw &psw() const { return psw_; }
    const FpuStats &stats() const { return stats_; }
    unsigned latency() const { return units_.latency(); }
    softfp::Backend backend() const { return backend_; }

    /**
     * Fault-injection hook: corrupt the *next* ALU element to issue.
     * @p result_xor is XORed into the element's 64-bit result;
     * @p flag_xor toggles its IEEE flags (bit 0 overflow, 1 underflow,
     * 2 inexact, 3 invalid, 4 divide-by-zero). One-shot: disarmed as
     * it fires. The disarmed check is a single bool test on the
     * element-issue slow path, so uninjected runs pay nothing.
     */
    void
    armElementCorruption(uint64_t result_xor, uint8_t flag_xor)
    {
        corruptResultXor_ = result_xor;
        corruptFlagXor_ = flag_xor;
        corruptArmed_ = true;
    }

    /** True while an armed element corruption has not yet fired. */
    bool elementCorruptionArmed() const { return corruptArmed_; }

    /** Full reset (registers, pipelines, PSW, statistics). */
    void reset();

    /** Serialize all FPU state (registers, scoreboard, pipelines,
     *  PSW, statistics, fault-injection arm state). */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(). */
    void restoreState(ByteReader &in);

  private:
    /** Out-of-line tail of beginCycle(): PSW merge + overflow squash. */
    void retirePswState(const std::vector<PendingOp> &retired);

    /** Out-of-line tail of tryIssueElement(): the IR holds work. */
    ElementEvent tryIssueElementSlow();

    RegisterFile regs_;
    Scoreboard sb_;
    FunctionalUnits units_;
    AluInstructionRegister ir_;
    LoadStoreUnit lsu_;
    Psw psw_;
    FpuStats stats_;
    softfp::Backend backend_;
    uint64_t nextSeq_ = 1;
    bool elementIssuedThisCycle_ = false;

    // One-shot element corruption (armElementCorruption).
    bool corruptArmed_ = false;
    uint64_t corruptResultXor_ = 0;
    uint8_t corruptFlagXor_ = 0;
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_FPU_HH
