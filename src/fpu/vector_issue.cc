#include "fpu/vector_issue.hh"

#include "common/log.hh"
#include "exec/semantics.hh"
#include "fpu/scoreboard.hh"

namespace mtfpu::fpu
{

void
AluInstructionRegister::transfer(const isa::FpuAluInstr &instr,
                                 uint64_t seq)
{
    if (busy())
        panic("AluInstructionRegister: transfer while busy");
    current_ = Live{instr.op, instr.rr, instr.ra, instr.rb, instr.vlm1,
                    instr.sra, instr.srb, seq};
}

uint64_t
AluInstructionRegister::currentSeq() const
{
    return current_ ? current_->seq : 0;
}

IssueStall
AluInstructionRegister::tryIssue(const Scoreboard &sb, ElementIssue &out)
{
    if (!current_)
        return IssueStall::Empty;

    Live &live = *current_;

    // Scalar scoreboarding of this element: both source reservation
    // bits must be clear (unary operations read only Ra), and the
    // destination must not carry an outstanding reservation.
    if (sb.reserved(live.ra))
        return IssueStall::SourceBusy;
    if (!exec::fpOpIsUnary(live.op) && sb.reserved(live.rb))
        return IssueStall::SourceBusy;
    if (sb.reserved(live.rr))
        return IssueStall::DestBusy;

    out = ElementIssue{live.op, live.rr, live.ra, live.rb, live.vl == 0};

    // After issue: check the VL field; if zero, clear the IR,
    // otherwise decrement it and increment the register specifiers
    // (Rr always; Ra/Rb under their stride bits). Paper §2.1.1.
    if (live.vl == 0) {
        current_.reset();
    } else {
        --live.vl;
        exec::ElementSpecs specs{live.rr, live.ra, live.rb};
        exec::advanceSpecifiers(specs, live.sra, live.srb);
        live.rr = specs.rr;
        live.ra = specs.ra;
        live.rb = specs.rb;
        if (live.rr >= isa::kNumFpuRegs ||
            live.ra >= isa::kNumFpuRegs ||
            live.rb >= isa::kNumFpuRegs) {
            fatal("vector element specifier incremented past f51");
        }
    }
    return IssueStall::None;
}

void
AluInstructionRegister::squash()
{
    current_.reset();
}

bool
AluInstructionRegister::currentTouches(unsigned reg,
                                       bool include_sources) const
{
    if (!current_)
        return false;
    const Live &live = *current_;
    if (reg == live.rr)
        return true;
    if (!include_sources)
        return false;
    if (reg == live.ra)
        return true;
    return !exec::fpOpIsUnary(live.op) && reg == live.rb;
}

bool
AluInstructionRegister::touchesBeyondCurrent(unsigned reg,
                                             bool include_sources) const
{
    if (!current_ || current_->vl == 0)
        return false;
    const Live &live = *current_;
    const unsigned n = live.vl; // elements beyond the current one
    // The element after the current one starts at rr+1 (and ra+1/rb+1
    // when strided).
    if (reg >= live.rr + 1u && reg <= live.rr + n)
        return true;
    if (!include_sources)
        return false;
    if (live.sra && reg >= live.ra + 1u && reg <= live.ra + n)
        return true;
    if (!exec::fpOpIsUnary(live.op) && live.srb &&
        reg >= live.rb + 1u && reg <= live.rb + n) {
        return true;
    }
    return false;
}

unsigned
AluInstructionRegister::remainingElements() const
{
    return current_ ? current_->vl + 1u : 0u;
}

} // namespace mtfpu::fpu
