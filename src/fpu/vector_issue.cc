#include "fpu/vector_issue.hh"

#include "common/log.hh"
#include "exec/semantics.hh"
#include "fpu/scoreboard.hh"

namespace mtfpu::fpu
{

void
AluInstructionRegister::transfer(const isa::FpuAluInstr &instr,
                                 uint64_t seq)
{
    if (busy())
        panic("AluInstructionRegister: transfer while busy");
    current_ = Live{instr.op, instr.rr, instr.ra, instr.rb, instr.vlm1,
                    instr.sra, instr.srb, seq};
}

void
AluInstructionRegister::squash()
{
    current_.reset();
}

bool
AluInstructionRegister::currentTouches(unsigned reg,
                                       bool include_sources) const
{
    if (!current_)
        return false;
    const Live &live = *current_;
    if (reg == live.rr)
        return true;
    if (!include_sources)
        return false;
    if (reg == live.ra)
        return true;
    return !exec::fpOpIsUnary(live.op) && reg == live.rb;
}

bool
AluInstructionRegister::touchesBeyondCurrent(unsigned reg,
                                             bool include_sources) const
{
    if (!current_ || current_->vl == 0)
        return false;
    const Live &live = *current_;
    const unsigned n = live.vl; // elements beyond the current one
    // The element after the current one starts at rr+1 (and ra+1/rb+1
    // when strided).
    if (reg >= live.rr + 1u && reg <= live.rr + n)
        return true;
    if (!include_sources)
        return false;
    if (live.sra && reg >= live.ra + 1u && reg <= live.ra + n)
        return true;
    if (!exec::fpOpIsUnary(live.op) && live.srb &&
        reg >= live.rb + 1u && reg <= live.rb + n) {
        return true;
    }
    return false;
}

unsigned
AluInstructionRegister::remainingElements() const
{
    return current_ ? current_->vl + 1u : 0u;
}

void
AluInstructionRegister::saveState(ByteWriter &out) const
{
    out.b(current_.has_value());
    if (!current_)
        return;
    const Live &live = *current_;
    out.u8(static_cast<uint8_t>(live.op));
    out.u8(live.rr);
    out.u8(live.ra);
    out.u8(live.rb);
    out.u8(live.vl);
    out.b(live.sra);
    out.b(live.srb);
    out.u64(live.seq);
}

void
AluInstructionRegister::restoreState(ByteReader &in)
{
    if (!in.b()) {
        current_.reset();
        return;
    }
    Live live;
    live.op = static_cast<isa::FpOp>(in.u8());
    live.rr = in.u8();
    live.ra = in.u8();
    live.rb = in.u8();
    live.vl = in.u8();
    live.sra = in.b();
    live.srb = in.b();
    live.seq = in.u64();
    current_ = live;
}

} // namespace mtfpu::fpu
