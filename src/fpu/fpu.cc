#include "fpu/fpu.hh"

#include "common/log.hh"
#include "exec/semantics.hh"

namespace mtfpu::fpu
{

Fpu::Fpu(unsigned latency, softfp::Backend backend)
    : units_(latency), backend_(backend)
{
}

void
Fpu::retirePswState(const std::vector<PendingOp> &retired)
{
    // Accumulate PSW state of retiring ALU operations. An element
    // that overflowed discards all remaining elements of its own
    // vector instruction when it retires (paper §2.3.1); elements
    // already in the pipeline behind it complete normally.
    for (const PendingOp &op : retired) {
        psw_.flags.merge(op.flags);
        if (op.flags.overflow) {
            psw_.recordOverflow(op.reg);
            if (ir_.busy() && ir_.currentSeq() == op.seq) {
                stats_.squashedElements += ir_.remainingElements();
                ir_.squash();
            }
        }
    }
}

ElementEvent
Fpu::tryIssueElementSlow()
{
    ElementEvent event;

    const uint64_t seq = ir_.currentSeq();
    ElementIssue element;
    switch (ir_.tryIssue(sb_, element)) {
      case IssueStall::SourceBusy:
        ++stats_.sourceStallCycles;
        return event;
      case IssueStall::DestBusy:
        ++stats_.destStallCycles;
        return event;
      case IssueStall::Empty:
        return event;
      case IssueStall::None:
        break;
    }

    // Execute at issue: read the A/B ports, run the (functionally
    // instantaneous) unit, and enter the 3-cycle pipeline. The result
    // becomes architecturally visible at retirement.
    const uint64_t a = regs_.read(element.ra);
    const uint64_t b = regs_.read(element.rb);
    softfp::Flags flags;
    uint64_t value = exec::evalFpOp(element.op, a, b, flags, backend_);

    if (corruptArmed_) {
        value ^= corruptResultXor_;
        flags.overflow ^= (corruptFlagXor_ & 0x01) != 0;
        flags.underflow ^= (corruptFlagXor_ & 0x02) != 0;
        flags.inexact ^= (corruptFlagXor_ & 0x04) != 0;
        flags.invalid ^= (corruptFlagXor_ & 0x08) != 0;
        flags.divByZero ^= (corruptFlagXor_ & 0x10) != 0;
        corruptArmed_ = false;
    }

    sb_.reserve(element.rr);
    units_.issue(element.op, element.rr, value, flags, seq);

    ++stats_.elementsIssued;
    ++stats_.opCounts[static_cast<unsigned>(element.op)];
    elementIssuedThisCycle_ = true;

    event.issued = true;
    event.element = element;
    return event;
}

bool
Fpu::canTransferAlu() const
{
    return !ir_.busy() && !elementIssuedThisCycle_;
}

void
Fpu::transferAlu(const isa::FpuAluInstr &instr)
{
    if (!canTransferAlu())
        panic("Fpu::transferAlu: ALU IR not ready");
    ir_.transfer(instr, nextSeq_++);
    if (instr.length() > 1)
        ++stats_.vectorInstructions;
    else
        ++stats_.scalarInstructions;
}

bool
Fpu::transferStall(unsigned reg) const
{
    return sb_.reserved(reg);
}

void
Fpu::issueLoad(unsigned reg, uint64_t value)
{
    if (transferStall(reg))
        panic("Fpu::issueLoad: load issued against a reserved register");
    lsu_.issueLoad(reg, value);
}

uint64_t
Fpu::readForTransfer(unsigned reg) const
{
    return regs_.read(reg);
}

bool
Fpu::currentElementInterlock(unsigned reg, bool include_sources) const
{
    return ir_.currentTouches(reg, include_sources);
}

bool
Fpu::hazardWithUnissued(unsigned reg, bool include_sources) const
{
    return ir_.touchesBeyondCurrent(reg, include_sources);
}

bool
Fpu::busy() const
{
    return ir_.busy() || units_.busy() || lsu_.busy();
}

void
Fpu::reset()
{
    regs_.clear();
    sb_.clear();
    units_.clear();
    ir_.clear();
    lsu_.clear();
    psw_.clear();
    stats_ = FpuStats{};
    nextSeq_ = 1;
    elementIssuedThisCycle_ = false;
    corruptArmed_ = false;
    corruptResultXor_ = 0;
    corruptFlagXor_ = 0;
}

void
Fpu::saveState(ByteWriter &out) const
{
    for (unsigned i = 0; i < isa::kNumFpuRegs; ++i)
        out.u64(regs_.read(i));

    uint64_t sbBits = 0;
    for (unsigned i = 0; i < isa::kNumFpuRegs; ++i) {
        if (sb_.reserved(i))
            sbBits |= uint64_t{1} << i;
    }
    out.u64(sbBits);

    units_.saveState(out);
    ir_.saveState(out);
    lsu_.saveState(out);

    out.u8(psw_.flags.toBits());
    out.b(psw_.overflowValid);
    out.u8(psw_.overflowReg);

    out.u64(stats_.elementsIssued);
    out.u64(stats_.vectorInstructions);
    out.u64(stats_.scalarInstructions);
    out.u64(stats_.sourceStallCycles);
    out.u64(stats_.destStallCycles);
    out.u64(stats_.squashedElements);
    for (const uint64_t c : stats_.opCounts)
        out.u64(c);

    out.u64(nextSeq_);
    out.b(elementIssuedThisCycle_);
    out.b(corruptArmed_);
    out.u64(corruptResultXor_);
    out.u8(corruptFlagXor_);
}

void
Fpu::restoreState(ByteReader &in)
{
    for (unsigned i = 0; i < isa::kNumFpuRegs; ++i)
        regs_.write(i, in.u64());

    sb_.clear();
    const uint64_t sbBits = in.u64();
    for (unsigned i = 0; i < isa::kNumFpuRegs; ++i) {
        if (sbBits & (uint64_t{1} << i))
            sb_.reserve(i);
    }

    units_.restoreState(in);
    ir_.restoreState(in);
    lsu_.restoreState(in);

    psw_.flags = softfp::Flags::fromBits(in.u8());
    psw_.overflowValid = in.b();
    psw_.overflowReg = in.u8();

    stats_.elementsIssued = in.u64();
    stats_.vectorInstructions = in.u64();
    stats_.scalarInstructions = in.u64();
    stats_.sourceStallCycles = in.u64();
    stats_.destStallCycles = in.u64();
    stats_.squashedElements = in.u64();
    for (uint64_t &c : stats_.opCounts)
        c = in.u64();

    nextSeq_ = in.u64();
    elementIssuedThisCycle_ = in.b();
    corruptArmed_ = in.b();
    corruptResultXor_ = in.u64();
    corruptFlagXor_ = in.u8();
}

} // namespace mtfpu::fpu
