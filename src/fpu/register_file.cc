#include "fpu/register_file.hh"

#include <cstring>

#include "common/log.hh"

namespace mtfpu::fpu
{

uint64_t
RegisterFile::read(unsigned reg) const
{
    if (reg >= isa::kNumFpuRegs)
        fatal("RegisterFile: read of f" + std::to_string(reg));
    return regs_[reg];
}

void
RegisterFile::write(unsigned reg, uint64_t value)
{
    if (reg >= isa::kNumFpuRegs)
        fatal("RegisterFile: write of f" + std::to_string(reg));
    regs_[reg] = value;
}

double
RegisterFile::readDouble(unsigned reg) const
{
    const uint64_t v = read(reg);
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

void
RegisterFile::writeDouble(unsigned reg, double value)
{
    uint64_t v;
    std::memcpy(&v, &value, sizeof(v));
    write(reg, v);
}

void
RegisterFile::clear()
{
    regs_.fill(0);
}

} // namespace mtfpu::fpu
