#include "fpu/register_file.hh"

#include <cstring>

namespace mtfpu::fpu
{

double
RegisterFile::readDouble(unsigned reg) const
{
    const uint64_t v = read(reg);
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

void
RegisterFile::writeDouble(unsigned reg, double value)
{
    uint64_t v;
    std::memcpy(&v, &value, sizeof(v));
    write(reg, v);
}

} // namespace mtfpu::fpu
