/**
 * @file
 * The register write reservation table (paper §2.3.1): one bit per
 * register, set when an outstanding ALU operation will write that
 * register, cleared when the operation retires. Loads and stores read
 * the table through their own port but never set bits.
 */

#ifndef MTFPU_FPU_SCOREBOARD_HH
#define MTFPU_FPU_SCOREBOARD_HH

#include <bitset>

#include "isa/fpu_instr.hh"

namespace mtfpu::fpu
{

/** The one-bit-per-register reservation table. */
class Scoreboard
{
  public:
    /** Set the reservation bit at ALU element issue. */
    void reserve(unsigned reg);

    /** Clear the reservation bit at ALU operation retire. */
    void release(unsigned reg);

    /** True if an outstanding ALU write targets @p reg. */
    bool reserved(unsigned reg) const;

    /** Clear every bit. */
    void clear();

    /** Number of set bits (for invariants in tests). */
    size_t count() const { return bits_.count(); }

  private:
    std::bitset<isa::kNumFpuRegs> bits_;
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_SCOREBOARD_HH
