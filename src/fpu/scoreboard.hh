/**
 * @file
 * The register write reservation table (paper §2.3.1): one bit per
 * register, set when an outstanding ALU operation will write that
 * register, cleared when the operation retires. Loads and stores read
 * the table through their own port but never set bits.
 *
 * Everything is defined inline: reserved() sits on the per-element
 * issue path (several probes per simulated cycle), so it must compile
 * down to a bit test.
 */

#ifndef MTFPU_FPU_SCOREBOARD_HH
#define MTFPU_FPU_SCOREBOARD_HH

#include <bitset>
#include <string>

#include "common/log.hh"
#include "isa/fpu_instr.hh"

namespace mtfpu::fpu
{

/** The one-bit-per-register reservation table. */
class Scoreboard
{
  public:
    /** Set the reservation bit at ALU element issue. */
    void
    reserve(unsigned reg)
    {
        if (reg >= isa::kNumFpuRegs)
            fatal(ErrCode::RegFileRange,
                  "Scoreboard: reserve of f" + std::to_string(reg) +
                      " (register file holds f0..f" +
                      std::to_string(isa::kNumFpuRegs - 1) + ")");
        if (bits_[reg])
            panic("Scoreboard: double reservation of f" +
                  std::to_string(reg));
        bits_[reg] = true;
    }

    /** Clear the reservation bit at ALU operation retire. */
    void
    release(unsigned reg)
    {
        if (reg >= isa::kNumFpuRegs)
            fatal(ErrCode::RegFileRange,
                  "Scoreboard: release of f" + std::to_string(reg) +
                      " (register file holds f0..f" +
                      std::to_string(isa::kNumFpuRegs - 1) + ")");
        if (!bits_[reg])
            panic("Scoreboard: release of unreserved f" +
                  std::to_string(reg));
        bits_[reg] = false;
    }

    /** True if an outstanding ALU write targets @p reg. */
    bool
    reserved(unsigned reg) const
    {
        if (reg >= isa::kNumFpuRegs)
            fatal(ErrCode::RegFileRange,
                  "Scoreboard: probe of f" + std::to_string(reg) +
                      " (register file holds f0..f" +
                      std::to_string(isa::kNumFpuRegs - 1) + ")");
        return bits_[reg];
    }

    /** Clear every bit. */
    void clear() { bits_.reset(); }

    /** Number of set bits (for invariants in tests). */
    size_t count() const { return bits_.count(); }

  private:
    std::bitset<isa::kNumFpuRegs> bits_;
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_SCOREBOARD_HH
