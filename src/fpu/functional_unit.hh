/**
 * @file
 * The three fully pipelined functional units (add, multiply,
 * reciprocal; paper §2). Every operation has the same three-cycle
 * latency including bypass, so a single in-flight queue models all
 * three: each entry counts down the remaining pipeline stages and the
 * result is written back (and its reservation released) when the
 * count reaches zero. Because all units share one latency and at most
 * one element issues per cycle, the register-file write port never
 * conflicts (paper §2.3.1).
 */

#ifndef MTFPU_FPU_FUNCTIONAL_UNIT_HH
#define MTFPU_FPU_FUNCTIONAL_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/bytestream.hh"
#include "isa/fpu_instr.hh"
#include "softfp/fp64.hh"

namespace mtfpu::fpu
{

class RegisterFile;
class Scoreboard;

/** Latency in cycles of every FPU ALU operation, including bypass. */
constexpr unsigned kFpuLatency = 3;

/** One operation in flight through a functional-unit pipeline. */
struct PendingOp
{
    unsigned remaining;  // active cycles until writeback
    uint8_t reg;         // destination register
    uint64_t value;      // computed result (execute-at-issue model)
    softfp::Flags flags; // exception flags of this operation
    isa::FpOp op;        // for statistics and tracing
    uint64_t seq;        // vector-instruction sequence tag (for squash)
};

/**
 * The shared in-flight pipeline model. advance() must be called once
 * per non-stalled machine cycle *before* issue; on a lock-step global
 * stall the pipelines freeze and advance() is not called.
 */
class FunctionalUnits
{
  public:
    /** Configure the (uniform) operation latency; default 3. */
    explicit FunctionalUnits(unsigned latency = kFpuLatency);

    /**
     * Enter a newly issued element. Its result becomes architecturally
     * visible @p latency active cycles later.
     */
    void issue(isa::FpOp op, unsigned reg, uint64_t value,
               const softfp::Flags &flags, uint64_t seq);

    /**
     * Advance one active cycle: write back every operation whose
     * latency has elapsed, releasing its reservation and merging its
     * flags. Returns the operations retired this cycle; the reference
     * points into a reused internal buffer (no per-cycle allocation)
     * and is valid until the next advance() or clear().
     * Inline empty fast path: idle pipelines cost one branch.
     */
    const std::vector<PendingOp> &
    advance(RegisterFile &regs, Scoreboard &sb)
    {
        if (inflight_.empty()) {
            retired_.clear();
            return retired_;
        }
        return advanceSlow(regs, sb);
    }

    /** True if any operation is still in flight. */
    bool busy() const { return !inflight_.empty(); }

    /** Configured latency. */
    unsigned latency() const { return latency_; }

    /** Drop all in-flight state (reset). */
    void
    clear()
    {
        inflight_.clear();
        retired_.clear();
    }

    /** Serialize the in-flight queue (latency is configuration). */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(); retired_ is transient. */
    void restoreState(ByteReader &in);

  private:
    /** Out-of-line tail of advance(): retire elapsed operations. */
    const std::vector<PendingOp> &advanceSlow(RegisterFile &regs,
                                              Scoreboard &sb);

    unsigned latency_;
    std::vector<PendingOp> inflight_;
    std::vector<PendingOp> retired_; // reused advance() result buffer
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_FUNCTIONAL_UNIT_HH
