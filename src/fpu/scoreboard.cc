#include "fpu/scoreboard.hh"

#include "common/log.hh"

namespace mtfpu::fpu
{

void
Scoreboard::reserve(unsigned reg)
{
    if (reg >= isa::kNumFpuRegs)
        fatal("Scoreboard: reserve of f" + std::to_string(reg));
    if (bits_[reg])
        panic("Scoreboard: double reservation of f" + std::to_string(reg));
    bits_[reg] = true;
}

void
Scoreboard::release(unsigned reg)
{
    if (reg >= isa::kNumFpuRegs)
        fatal("Scoreboard: release of f" + std::to_string(reg));
    if (!bits_[reg])
        panic("Scoreboard: release of unreserved f" + std::to_string(reg));
    bits_[reg] = false;
}

bool
Scoreboard::reserved(unsigned reg) const
{
    if (reg >= isa::kNumFpuRegs)
        fatal("Scoreboard: probe of f" + std::to_string(reg));
    return bits_[reg];
}

void
Scoreboard::clear()
{
    bits_.reset();
}

} // namespace mtfpu::fpu
