/**
 * @file
 * The FPU ALU instruction register and vector element issue logic
 * (paper §2.1.1). A vector instruction is issued by re-issuing the IR
 * contents once per cycle: after each element issues, the vector
 * length field is checked — if zero the instruction is cleared,
 * otherwise VL decrements, the result specifier Rr increments, and
 * Ra/Rb increment iff their stride bits are set. Each element goes
 * through the ordinary scalar scoreboard, so arbitrary inter-element
 * dependencies (reductions, recurrences) are legal and interlocked.
 *
 * The only vector-specific hardware this models is exactly what the
 * paper lists (§2.3): three 6-bit incrementers, one 4-bit decrementer,
 * and the re-issue control.
 */

#ifndef MTFPU_FPU_VECTOR_ISSUE_HH
#define MTFPU_FPU_VECTOR_ISSUE_HH

#include <cstdint>
#include <optional>

#include "common/bytestream.hh"
#include "common/log.hh"
#include "exec/semantics.hh"
#include "fpu/scoreboard.hh"
#include "isa/fpu_instr.hh"

namespace mtfpu::fpu
{

/** Why the IR could not issue an element this cycle. */
enum class IssueStall
{
    None,        // an element issued
    SourceBusy,  // a source reservation bit is set
    DestBusy,    // the destination reservation bit is set
    Empty,       // the IR holds no instruction
};

/** One element ready to execute, as produced by the IR. */
struct ElementIssue
{
    isa::FpOp op;
    uint8_t rr, ra, rb;
    bool last; // true if this was the final element of the instruction
};

/** The ALU instruction register. */
class AluInstructionRegister
{
  public:
    /** True while an instruction occupies the IR. */
    bool busy() const { return current_.has_value(); }

    /**
     * Transfer a new instruction from the CPU. Only legal when the IR
     * is empty (the CPU stalls otherwise). @p seq tags the
     * instruction so overflow squash can match in-flight elements to
     * their originating vector instruction.
     */
    void transfer(const isa::FpuAluInstr &instr, uint64_t seq);

    /** Sequence tag of the occupying instruction (0 if empty). */
    uint64_t currentSeq() const { return current_ ? current_->seq : 0; }

    /**
     * Attempt to issue the current element against the scoreboard.
     * On success the caller must execute the element and reserve its
     * destination; the IR advances its specifiers (or clears itself
     * after the last element). Inline: this runs once per occupied
     * active cycle and dominated the issue-path profile out of line.
     */
    IssueStall
    tryIssue(const Scoreboard &sb, ElementIssue &out)
    {
        if (!current_)
            return IssueStall::Empty;

        Live &live = *current_;

        // Scalar scoreboarding of this element: both source
        // reservation bits must be clear (unary operations read only
        // Ra), and the destination must not carry an outstanding
        // reservation.
        if (sb.reserved(live.ra))
            return IssueStall::SourceBusy;
        if (!exec::fpOpIsUnary(live.op) && sb.reserved(live.rb))
            return IssueStall::SourceBusy;
        if (sb.reserved(live.rr))
            return IssueStall::DestBusy;

        out = ElementIssue{live.op, live.rr, live.ra, live.rb,
                           live.vl == 0};

        // After issue: check the VL field; if zero, clear the IR,
        // otherwise decrement it and increment the register specifiers
        // (Rr always; Ra/Rb under their stride bits). Paper §2.1.1.
        if (live.vl == 0) {
            current_.reset();
        } else {
            --live.vl;
            exec::ElementSpecs specs{live.rr, live.ra, live.rb};
            exec::advanceSpecifiers(specs, live.sra, live.srb);
            live.rr = specs.rr;
            live.ra = specs.ra;
            live.rb = specs.rb;
            if (live.rr >= isa::kNumFpuRegs ||
                live.ra >= isa::kNumFpuRegs ||
                live.rb >= isa::kNumFpuRegs) {
                fatal("vector element specifier incremented past f51");
            }
        }
        return IssueStall::None;
    }

    /**
     * Discard all remaining elements (overflow semantics, §2.3.1).
     * No-op if the IR is empty.
     */
    void squash();

    /**
     * True if register @p reg is an operand of the *current* (next to
     * issue) element. The hardware places an execution constraint
     * between the occupying instruction and following loads/stores
     * for this element (§2.3.2: constraints cover the pending
     * element; only "elements in a vector other than the first"
     * require the compiler to break the vector). Result register is
     * always checked; sources only when @p include_sources is set.
     */
    bool currentTouches(unsigned reg, bool include_sources) const;

    /**
     * True if register @p reg belongs to a not-yet-issued element
     * *beyond* the current one — the races the paper leaves to the
     * compiler (§2.3.2), detected by the configurable hazard policy.
     * Result range always checked; source ranges when
     * @p include_sources is set (loads can break WAR against unissued
     * sources, stores only RAW against unissued results).
     */
    bool touchesBeyondCurrent(unsigned reg, bool include_sources) const;

    /** Remaining element count including the one pending (0 if idle). */
    unsigned remainingElements() const;

    /** Reset to empty. */
    void clear() { current_.reset(); }

    /** Serialize the occupying instruction (or its absence). */
    void saveState(ByteWriter &out) const;

    /** Restore state saved by saveState(). */
    void restoreState(ByteReader &in);

  private:
    /** The live IR fields (mutated between elements). */
    struct Live
    {
        isa::FpOp op;
        uint8_t rr, ra, rb;
        uint8_t vl; // remaining VL field value (elements left - 1)
        bool sra, srb;
        uint64_t seq;
    };

    std::optional<Live> current_;
};

} // namespace mtfpu::fpu

#endif // MTFPU_FPU_VECTOR_ISSUE_HH
