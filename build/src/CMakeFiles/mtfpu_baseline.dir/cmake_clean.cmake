file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_baseline.dir/baseline/amdahl.cc.o"
  "CMakeFiles/mtfpu_baseline.dir/baseline/amdahl.cc.o.d"
  "CMakeFiles/mtfpu_baseline.dir/baseline/hockney.cc.o"
  "CMakeFiles/mtfpu_baseline.dir/baseline/hockney.cc.o.d"
  "CMakeFiles/mtfpu_baseline.dir/baseline/published.cc.o"
  "CMakeFiles/mtfpu_baseline.dir/baseline/published.cc.o.d"
  "libmtfpu_baseline.a"
  "libmtfpu_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
