
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/amdahl.cc" "src/CMakeFiles/mtfpu_baseline.dir/baseline/amdahl.cc.o" "gcc" "src/CMakeFiles/mtfpu_baseline.dir/baseline/amdahl.cc.o.d"
  "/root/repo/src/baseline/hockney.cc" "src/CMakeFiles/mtfpu_baseline.dir/baseline/hockney.cc.o" "gcc" "src/CMakeFiles/mtfpu_baseline.dir/baseline/hockney.cc.o.d"
  "/root/repo/src/baseline/published.cc" "src/CMakeFiles/mtfpu_baseline.dir/baseline/published.cc.o" "gcc" "src/CMakeFiles/mtfpu_baseline.dir/baseline/published.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
