# Empty dependencies file for mtfpu_baseline.
# This may be replaced when dependencies are built.
