file(REMOVE_RECURSE
  "libmtfpu_baseline.a"
)
