# Empty dependencies file for mtfpu_kernels.
# This may be replaced when dependencies are built.
