
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/builder.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/builder.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/builder.cc.o.d"
  "/root/repo/src/kernels/graphics/transform.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/graphics/transform.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/graphics/transform.cc.o.d"
  "/root/repo/src/kernels/linpack/linpack.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/linpack/linpack.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/linpack/linpack.cc.o.d"
  "/root/repo/src/kernels/livermore/lfk01_06.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk01_06.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk01_06.cc.o.d"
  "/root/repo/src/kernels/livermore/lfk07_12.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk07_12.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk07_12.cc.o.d"
  "/root/repo/src/kernels/livermore/lfk13_18.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk13_18.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk13_18.cc.o.d"
  "/root/repo/src/kernels/livermore/lfk19_24.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk19_24.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk19_24.cc.o.d"
  "/root/repo/src/kernels/livermore/livermore.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/livermore.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/livermore/livermore.cc.o.d"
  "/root/repo/src/kernels/mathlib.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/mathlib.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/mathlib.cc.o.d"
  "/root/repo/src/kernels/runner.cc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/runner.cc.o" "gcc" "src/CMakeFiles/mtfpu_kernels.dir/kernels/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_fpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_softfp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
