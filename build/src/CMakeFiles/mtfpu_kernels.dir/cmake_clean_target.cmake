file(REMOVE_RECURSE
  "libmtfpu_kernels.a"
)
