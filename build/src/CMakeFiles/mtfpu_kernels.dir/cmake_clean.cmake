file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_kernels.dir/kernels/builder.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/builder.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/graphics/transform.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/graphics/transform.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/linpack/linpack.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/linpack/linpack.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk01_06.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk01_06.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk07_12.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk07_12.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk13_18.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk13_18.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk19_24.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/lfk19_24.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/livermore.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/livermore/livermore.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/mathlib.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/mathlib.cc.o.d"
  "CMakeFiles/mtfpu_kernels.dir/kernels/runner.cc.o"
  "CMakeFiles/mtfpu_kernels.dir/kernels/runner.cc.o.d"
  "libmtfpu_kernels.a"
  "libmtfpu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
