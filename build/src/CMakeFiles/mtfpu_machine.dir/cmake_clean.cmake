file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_machine.dir/cpu/cpu.cc.o"
  "CMakeFiles/mtfpu_machine.dir/cpu/cpu.cc.o.d"
  "CMakeFiles/mtfpu_machine.dir/machine/interpreter.cc.o"
  "CMakeFiles/mtfpu_machine.dir/machine/interpreter.cc.o.d"
  "CMakeFiles/mtfpu_machine.dir/machine/machine.cc.o"
  "CMakeFiles/mtfpu_machine.dir/machine/machine.cc.o.d"
  "CMakeFiles/mtfpu_machine.dir/machine/stats.cc.o"
  "CMakeFiles/mtfpu_machine.dir/machine/stats.cc.o.d"
  "CMakeFiles/mtfpu_machine.dir/machine/tracer.cc.o"
  "CMakeFiles/mtfpu_machine.dir/machine/tracer.cc.o.d"
  "libmtfpu_machine.a"
  "libmtfpu_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
