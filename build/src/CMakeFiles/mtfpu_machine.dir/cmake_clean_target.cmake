file(REMOVE_RECURSE
  "libmtfpu_machine.a"
)
