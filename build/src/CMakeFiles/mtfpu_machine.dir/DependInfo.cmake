
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu.cc" "src/CMakeFiles/mtfpu_machine.dir/cpu/cpu.cc.o" "gcc" "src/CMakeFiles/mtfpu_machine.dir/cpu/cpu.cc.o.d"
  "/root/repo/src/machine/interpreter.cc" "src/CMakeFiles/mtfpu_machine.dir/machine/interpreter.cc.o" "gcc" "src/CMakeFiles/mtfpu_machine.dir/machine/interpreter.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/mtfpu_machine.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/mtfpu_machine.dir/machine/machine.cc.o.d"
  "/root/repo/src/machine/stats.cc" "src/CMakeFiles/mtfpu_machine.dir/machine/stats.cc.o" "gcc" "src/CMakeFiles/mtfpu_machine.dir/machine/stats.cc.o.d"
  "/root/repo/src/machine/tracer.cc" "src/CMakeFiles/mtfpu_machine.dir/machine/tracer.cc.o" "gcc" "src/CMakeFiles/mtfpu_machine.dir/machine/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_fpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_softfp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
