# Empty compiler generated dependencies file for mtfpu_machine.
# This may be replaced when dependencies are built.
