file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_common.dir/common/stats.cc.o"
  "CMakeFiles/mtfpu_common.dir/common/stats.cc.o.d"
  "CMakeFiles/mtfpu_common.dir/common/table.cc.o"
  "CMakeFiles/mtfpu_common.dir/common/table.cc.o.d"
  "libmtfpu_common.a"
  "libmtfpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
