# Empty compiler generated dependencies file for mtfpu_common.
# This may be replaced when dependencies are built.
