file(REMOVE_RECURSE
  "libmtfpu_common.a"
)
