
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softfp/add.cc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/add.cc.o" "gcc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/add.cc.o.d"
  "/root/repo/src/softfp/convert.cc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/convert.cc.o" "gcc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/convert.cc.o.d"
  "/root/repo/src/softfp/divide.cc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/divide.cc.o" "gcc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/divide.cc.o.d"
  "/root/repo/src/softfp/fp64.cc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/fp64.cc.o" "gcc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/fp64.cc.o.d"
  "/root/repo/src/softfp/mul.cc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/mul.cc.o" "gcc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/mul.cc.o.d"
  "/root/repo/src/softfp/recip.cc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/recip.cc.o" "gcc" "src/CMakeFiles/mtfpu_softfp.dir/softfp/recip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
