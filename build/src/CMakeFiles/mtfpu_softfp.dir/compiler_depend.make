# Empty compiler generated dependencies file for mtfpu_softfp.
# This may be replaced when dependencies are built.
