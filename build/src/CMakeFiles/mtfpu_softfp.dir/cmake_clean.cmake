file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_softfp.dir/softfp/add.cc.o"
  "CMakeFiles/mtfpu_softfp.dir/softfp/add.cc.o.d"
  "CMakeFiles/mtfpu_softfp.dir/softfp/convert.cc.o"
  "CMakeFiles/mtfpu_softfp.dir/softfp/convert.cc.o.d"
  "CMakeFiles/mtfpu_softfp.dir/softfp/divide.cc.o"
  "CMakeFiles/mtfpu_softfp.dir/softfp/divide.cc.o.d"
  "CMakeFiles/mtfpu_softfp.dir/softfp/fp64.cc.o"
  "CMakeFiles/mtfpu_softfp.dir/softfp/fp64.cc.o.d"
  "CMakeFiles/mtfpu_softfp.dir/softfp/mul.cc.o"
  "CMakeFiles/mtfpu_softfp.dir/softfp/mul.cc.o.d"
  "CMakeFiles/mtfpu_softfp.dir/softfp/recip.cc.o"
  "CMakeFiles/mtfpu_softfp.dir/softfp/recip.cc.o.d"
  "libmtfpu_softfp.a"
  "libmtfpu_softfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_softfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
