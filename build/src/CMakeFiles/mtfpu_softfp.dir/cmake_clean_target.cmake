file(REMOVE_RECURSE
  "libmtfpu_softfp.a"
)
