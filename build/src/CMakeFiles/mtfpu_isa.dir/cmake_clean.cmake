file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_isa.dir/isa/cpu_instr.cc.o"
  "CMakeFiles/mtfpu_isa.dir/isa/cpu_instr.cc.o.d"
  "CMakeFiles/mtfpu_isa.dir/isa/disasm.cc.o"
  "CMakeFiles/mtfpu_isa.dir/isa/disasm.cc.o.d"
  "CMakeFiles/mtfpu_isa.dir/isa/fpu_instr.cc.o"
  "CMakeFiles/mtfpu_isa.dir/isa/fpu_instr.cc.o.d"
  "libmtfpu_isa.a"
  "libmtfpu_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
