
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cpu_instr.cc" "src/CMakeFiles/mtfpu_isa.dir/isa/cpu_instr.cc.o" "gcc" "src/CMakeFiles/mtfpu_isa.dir/isa/cpu_instr.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/mtfpu_isa.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/mtfpu_isa.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/fpu_instr.cc" "src/CMakeFiles/mtfpu_isa.dir/isa/fpu_instr.cc.o" "gcc" "src/CMakeFiles/mtfpu_isa.dir/isa/fpu_instr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
