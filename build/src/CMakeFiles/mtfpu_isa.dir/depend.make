# Empty dependencies file for mtfpu_isa.
# This may be replaced when dependencies are built.
