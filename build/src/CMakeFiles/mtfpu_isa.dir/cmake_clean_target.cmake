file(REMOVE_RECURSE
  "libmtfpu_isa.a"
)
