file(REMOVE_RECURSE
  "libmtfpu_fpu.a"
)
