file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_fpu.dir/fpu/fpu.cc.o"
  "CMakeFiles/mtfpu_fpu.dir/fpu/fpu.cc.o.d"
  "CMakeFiles/mtfpu_fpu.dir/fpu/functional_unit.cc.o"
  "CMakeFiles/mtfpu_fpu.dir/fpu/functional_unit.cc.o.d"
  "CMakeFiles/mtfpu_fpu.dir/fpu/load_store_unit.cc.o"
  "CMakeFiles/mtfpu_fpu.dir/fpu/load_store_unit.cc.o.d"
  "CMakeFiles/mtfpu_fpu.dir/fpu/register_file.cc.o"
  "CMakeFiles/mtfpu_fpu.dir/fpu/register_file.cc.o.d"
  "CMakeFiles/mtfpu_fpu.dir/fpu/scoreboard.cc.o"
  "CMakeFiles/mtfpu_fpu.dir/fpu/scoreboard.cc.o.d"
  "CMakeFiles/mtfpu_fpu.dir/fpu/vector_issue.cc.o"
  "CMakeFiles/mtfpu_fpu.dir/fpu/vector_issue.cc.o.d"
  "libmtfpu_fpu.a"
  "libmtfpu_fpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_fpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
