# Empty compiler generated dependencies file for mtfpu_fpu.
# This may be replaced when dependencies are built.
