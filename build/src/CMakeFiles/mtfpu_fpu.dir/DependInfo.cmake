
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpu/fpu.cc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/fpu.cc.o" "gcc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/fpu.cc.o.d"
  "/root/repo/src/fpu/functional_unit.cc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/functional_unit.cc.o" "gcc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/functional_unit.cc.o.d"
  "/root/repo/src/fpu/load_store_unit.cc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/load_store_unit.cc.o" "gcc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/load_store_unit.cc.o.d"
  "/root/repo/src/fpu/register_file.cc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/register_file.cc.o" "gcc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/register_file.cc.o.d"
  "/root/repo/src/fpu/scoreboard.cc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/scoreboard.cc.o" "gcc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/scoreboard.cc.o.d"
  "/root/repo/src/fpu/vector_issue.cc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/vector_issue.cc.o" "gcc" "src/CMakeFiles/mtfpu_fpu.dir/fpu/vector_issue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_softfp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
