# Empty dependencies file for mtfpu_memory.
# This may be replaced when dependencies are built.
