file(REMOVE_RECURSE
  "libmtfpu_memory.a"
)
