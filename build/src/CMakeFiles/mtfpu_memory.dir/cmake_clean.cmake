file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_memory.dir/memory/direct_mapped_cache.cc.o"
  "CMakeFiles/mtfpu_memory.dir/memory/direct_mapped_cache.cc.o.d"
  "CMakeFiles/mtfpu_memory.dir/memory/main_memory.cc.o"
  "CMakeFiles/mtfpu_memory.dir/memory/main_memory.cc.o.d"
  "CMakeFiles/mtfpu_memory.dir/memory/memory_system.cc.o"
  "CMakeFiles/mtfpu_memory.dir/memory/memory_system.cc.o.d"
  "libmtfpu_memory.a"
  "libmtfpu_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
