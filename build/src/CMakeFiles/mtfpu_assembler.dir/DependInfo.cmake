
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/CMakeFiles/mtfpu_assembler.dir/assembler/assembler.cc.o" "gcc" "src/CMakeFiles/mtfpu_assembler.dir/assembler/assembler.cc.o.d"
  "/root/repo/src/assembler/lexer.cc" "src/CMakeFiles/mtfpu_assembler.dir/assembler/lexer.cc.o" "gcc" "src/CMakeFiles/mtfpu_assembler.dir/assembler/lexer.cc.o.d"
  "/root/repo/src/assembler/parser.cc" "src/CMakeFiles/mtfpu_assembler.dir/assembler/parser.cc.o" "gcc" "src/CMakeFiles/mtfpu_assembler.dir/assembler/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
