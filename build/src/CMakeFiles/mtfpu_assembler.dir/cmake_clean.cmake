file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_assembler.dir/assembler/assembler.cc.o"
  "CMakeFiles/mtfpu_assembler.dir/assembler/assembler.cc.o.d"
  "CMakeFiles/mtfpu_assembler.dir/assembler/lexer.cc.o"
  "CMakeFiles/mtfpu_assembler.dir/assembler/lexer.cc.o.d"
  "CMakeFiles/mtfpu_assembler.dir/assembler/parser.cc.o"
  "CMakeFiles/mtfpu_assembler.dir/assembler/parser.cc.o.d"
  "libmtfpu_assembler.a"
  "libmtfpu_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
