# Empty dependencies file for mtfpu_assembler.
# This may be replaced when dependencies are built.
