file(REMOVE_RECURSE
  "libmtfpu_assembler.a"
)
