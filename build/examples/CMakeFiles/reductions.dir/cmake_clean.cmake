file(REMOVE_RECURSE
  "CMakeFiles/reductions.dir/reductions.cpp.o"
  "CMakeFiles/reductions.dir/reductions.cpp.o.d"
  "reductions"
  "reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
