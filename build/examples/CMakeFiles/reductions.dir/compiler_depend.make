# Empty compiler generated dependencies file for reductions.
# This may be replaced when dependencies are built.
