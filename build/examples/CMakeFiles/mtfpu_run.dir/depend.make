# Empty dependencies file for mtfpu_run.
# This may be replaced when dependencies are built.
