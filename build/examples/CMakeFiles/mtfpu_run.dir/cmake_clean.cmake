file(REMOVE_RECURSE
  "CMakeFiles/mtfpu_run.dir/mtfpu_run.cpp.o"
  "CMakeFiles/mtfpu_run.dir/mtfpu_run.cpp.o.d"
  "mtfpu_run"
  "mtfpu_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtfpu_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
