# Empty dependencies file for livermore_explorer.
# This may be replaced when dependencies are built.
