file(REMOVE_RECURSE
  "CMakeFiles/recurrence_solver.dir/recurrence_solver.cpp.o"
  "CMakeFiles/recurrence_solver.dir/recurrence_solver.cpp.o.d"
  "recurrence_solver"
  "recurrence_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrence_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
