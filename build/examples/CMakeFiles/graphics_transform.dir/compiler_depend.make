# Empty compiler generated dependencies file for graphics_transform.
# This may be replaced when dependencies are built.
