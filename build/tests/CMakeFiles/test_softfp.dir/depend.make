# Empty dependencies file for test_softfp.
# This may be replaced when dependencies are built.
