file(REMOVE_RECURSE
  "CMakeFiles/test_softfp.dir/test_softfp.cc.o"
  "CMakeFiles/test_softfp.dir/test_softfp.cc.o.d"
  "test_softfp"
  "test_softfp.pdb"
  "test_softfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
