# Empty dependencies file for test_softfp_edge.
# This may be replaced when dependencies are built.
