file(REMOVE_RECURSE
  "CMakeFiles/test_softfp_edge.dir/test_softfp_edge.cc.o"
  "CMakeFiles/test_softfp_edge.dir/test_softfp_edge.cc.o.d"
  "test_softfp_edge"
  "test_softfp_edge.pdb"
  "test_softfp_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softfp_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
