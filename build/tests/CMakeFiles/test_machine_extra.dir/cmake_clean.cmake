file(REMOVE_RECURSE
  "CMakeFiles/test_machine_extra.dir/test_machine_extra.cc.o"
  "CMakeFiles/test_machine_extra.dir/test_machine_extra.cc.o.d"
  "test_machine_extra"
  "test_machine_extra.pdb"
  "test_machine_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
