# Empty compiler generated dependencies file for test_machine_extra.
# This may be replaced when dependencies are built.
