# Empty compiler generated dependencies file for test_fpu.
# This may be replaced when dependencies are built.
