# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_softfp[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_fpu[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_machine_extra[1]_include.cmake")
include("/root/repo/build/tests/test_softfp_edge[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
