# Empty compiler generated dependencies file for fig14_livermore.
# This may be replaced when dependencies are built.
