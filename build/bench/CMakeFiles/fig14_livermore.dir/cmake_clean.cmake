file(REMOVE_RECURSE
  "CMakeFiles/fig14_livermore.dir/fig14_livermore.cc.o"
  "CMakeFiles/fig14_livermore.dir/fig14_livermore.cc.o.d"
  "fig14_livermore"
  "fig14_livermore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_livermore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
