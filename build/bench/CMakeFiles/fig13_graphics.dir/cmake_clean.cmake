file(REMOVE_RECURSE
  "CMakeFiles/fig13_graphics.dir/fig13_graphics.cc.o"
  "CMakeFiles/fig13_graphics.dir/fig13_graphics.cc.o.d"
  "fig13_graphics"
  "fig13_graphics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_graphics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
