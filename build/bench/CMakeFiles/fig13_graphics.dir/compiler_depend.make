# Empty compiler generated dependencies file for fig13_graphics.
# This may be replaced when dependencies are built.
