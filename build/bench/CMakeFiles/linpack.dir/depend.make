# Empty dependencies file for linpack.
# This may be replaced when dependencies are built.
