file(REMOVE_RECURSE
  "CMakeFiles/linpack.dir/linpack.cc.o"
  "CMakeFiles/linpack.dir/linpack.cc.o.d"
  "linpack"
  "linpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
