
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_vector_loads.cc" "bench/CMakeFiles/fig09_vector_loads.dir/fig09_vector_loads.cc.o" "gcc" "bench/CMakeFiles/fig09_vector_loads.dir/fig09_vector_loads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtfpu_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_fpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_softfp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtfpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
