# Empty dependencies file for fig09_vector_loads.
# This may be replaced when dependencies are built.
