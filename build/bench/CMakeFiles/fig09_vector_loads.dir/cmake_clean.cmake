file(REMOVE_RECURSE
  "CMakeFiles/fig09_vector_loads.dir/fig09_vector_loads.cc.o"
  "CMakeFiles/fig09_vector_loads.dir/fig09_vector_loads.cc.o.d"
  "fig09_vector_loads"
  "fig09_vector_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vector_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
