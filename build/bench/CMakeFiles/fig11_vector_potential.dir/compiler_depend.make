# Empty compiler generated dependencies file for fig11_vector_potential.
# This may be replaced when dependencies are built.
