file(REMOVE_RECURSE
  "CMakeFiles/fig11_vector_potential.dir/fig11_vector_potential.cc.o"
  "CMakeFiles/fig11_vector_potential.dir/fig11_vector_potential.cc.o.d"
  "fig11_vector_potential"
  "fig11_vector_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vector_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
