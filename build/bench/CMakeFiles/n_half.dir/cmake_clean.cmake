file(REMOVE_RECURSE
  "CMakeFiles/n_half.dir/n_half.cc.o"
  "CMakeFiles/n_half.dir/n_half.cc.o.d"
  "n_half"
  "n_half.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/n_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
