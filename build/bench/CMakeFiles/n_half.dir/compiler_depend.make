# Empty compiler generated dependencies file for n_half.
# This may be replaced when dependencies are built.
