file(REMOVE_RECURSE
  "CMakeFiles/fig05_08_reductions.dir/fig05_08_reductions.cc.o"
  "CMakeFiles/fig05_08_reductions.dir/fig05_08_reductions.cc.o.d"
  "fig05_08_reductions"
  "fig05_08_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_08_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
