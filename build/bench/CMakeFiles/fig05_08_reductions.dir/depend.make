# Empty dependencies file for fig05_08_reductions.
# This may be replaced when dependencies are built.
