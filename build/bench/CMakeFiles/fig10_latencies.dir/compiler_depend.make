# Empty compiler generated dependencies file for fig10_latencies.
# This may be replaced when dependencies are built.
