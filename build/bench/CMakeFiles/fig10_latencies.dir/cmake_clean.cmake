file(REMOVE_RECURSE
  "CMakeFiles/fig10_latencies.dir/fig10_latencies.cc.o"
  "CMakeFiles/fig10_latencies.dir/fig10_latencies.cc.o.d"
  "fig10_latencies"
  "fig10_latencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
