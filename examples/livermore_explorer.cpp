/**
 * @file
 * Livermore loop explorer: run any of the 24 kernels in its scalar or
 * vector variant, with any cache configuration, and print the full
 * statistics — a workbench for exploring the design space the paper
 * discusses.
 *
 * Usage: livermore_explorer [loop] [scalar|vector] [ideal]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/livermore/livermore.hh"
#include "kernels/runner.hh"

int
main(int argc, char **argv)
{
    using namespace mtfpu;
    namespace lfk = kernels::livermore;

    int id = 1;
    bool vector = false;
    bool ideal = false;
    if (argc > 1)
        id = std::atoi(argv[1]);
    if (argc > 2)
        vector = std::strcmp(argv[2], "vector") == 0;
    if (argc > 3)
        ideal = std::strcmp(argv[3], "ideal") == 0;

    if (id < 1 || id > lfk::kNumLoops) {
        std::fprintf(stderr,
                     "usage: %s [1..24] [scalar|vector] [ideal]\n",
                     argv[0]);
        return 2;
    }
    if (vector && !lfk::hasVectorVariant(id)) {
        std::fprintf(stderr,
                     "loop %d has no vector variant; running "
                     "scalar\n",
                     id);
        vector = false;
    }

    machine::MachineConfig cfg;
    cfg.memory.modelCaches = !ideal;

    const kernels::Kernel k = lfk::make(id, vector);
    std::printf("LFK %d — %s (%s variant, span %d, %.0f flops)\n", id,
                k.title.c_str(), k.variant.c_str(), lfk::span(id),
                k.flops);

    const kernels::KernelResult r = kernels::runKernel(k, cfg);
    std::printf("\ncold cache: %8llu cycles  %6.2f MFLOPS\n",
                static_cast<unsigned long long>(r.cold.cycles),
                r.mflopsCold);
    std::printf("warm cache: %8llu cycles  %6.2f MFLOPS\n",
                static_cast<unsigned long long>(r.warm.cycles),
                r.mflopsWarm);
    std::printf("validation: %s (relative error %.3g)\n",
                r.valid ? "passed" : "FAILED", r.relError);
    std::printf("\nwarm-run statistics:\n%s",
                r.warm.summary().c_str());
    return r.valid ? 0 : 1;
}
