/**
 * @file
 * The three ways to reduce a vector on the unified vector/scalar
 * register file (paper §2.1.1, Figures 5-7), plus the Fibonacci
 * recurrence (Figure 8) — run side by side with timing diagrams.
 * Classical vector machines can express none of the last three,
 * because their vector registers do not allow inter-element
 * dependencies.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "machine/machine.hh"

namespace
{

using namespace mtfpu;

void
demo(const char *title, const char *source,
     void (*setup)(machine::Machine &), unsigned result_reg)
{
    machine::MachineConfig cfg;
    cfg.memory.modelCaches = false;
    machine::Machine m(cfg);
    machine::Tracer tracer;
    m.attachTracer(&tracer);
    m.loadProgram(assembler::assemble(source));
    setup(m);
    const machine::RunStats stats = m.run();
    std::printf("\n--- %s ---\n%s", title,
                tracer.renderTimeline().c_str());
    std::printf("result f%u = %g in %llu cycles "
                "(%llu CPU instruction transfers)\n",
                result_reg, m.fpu().regs().readDouble(result_reg),
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.fpAluTransfers));
}

void
ones_to_eight(machine::Machine &m)
{
    for (unsigned i = 0; i < 8; ++i)
        m.fpu().regs().writeDouble(i, 1.0 + i);
}

void
fib_seed(machine::Machine &m)
{
    m.fpu().regs().writeDouble(0, 1.0);
    m.fpu().regs().writeDouble(1, 1.0);
}

} // anonymous namespace

int
main()
{
    std::printf("Summing f0..f7 (values 1..8; expect 36):\n");

    demo("tree of scalar operations (Figure 5, 12 cycles)",
         R"(
            fadd f8, f0, f1
            fadd f9, f2, f3
            fadd f10, f4, f5
            fadd f11, f6, f7
            fadd f12, f8, f9
            fadd f13, f10, f11
            fadd f14, f12, f13
            halt
         )",
         ones_to_eight, 14);

    demo("linear vector, one instruction (Figure 6, 24 cycles)",
         "fadd f9, f8, f0, vl=8, sra, srb\nhalt\n", ones_to_eight,
         16);

    demo("tree of vector operations (Figure 7, 12 cycles, 3 "
         "transfers)",
         R"(
            fadd f8, f0, f4, vl=4, sra, srb
            fadd f12, f8, f10, vl=2, sra, srb
            fadd f14, f12, f13
            halt
         )",
         ones_to_eight, 14);

    demo("Fibonacci recurrence as one vector (Figure 8)",
         "fadd f2, f1, f0, vl=8, sra, srb\nhalt\n", fib_seed, 9);

    std::printf("\nNote how the vector tree frees the CPU: only 3 "
                "instruction transfers for the 12-cycle sum, leaving "
                "9 issue slots for loads of the next row (§2.1.1).\n");
    return 0;
}
