/**
 * @file
 * Quickstart: assemble a small program for the MultiTitan, run it on
 * the cycle simulator, and read back registers, memory, and
 * statistics. Demonstrates the three-step API: assemble -> load ->
 * run.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "machine/machine.hh"

int
main()
{
    using namespace mtfpu;

    // A vector multiply-accumulate: f16..f23 = f0..f7 * f8..f15, then
    // a halving-tree reduction, all while the CPU streams the next
    // block's loads in parallel.
    const char *source = R"(
        ; multiply two 8-element register vectors
        fmul f16, f0, f8, vl=8, sra, srb
        ; start loading the next block while the vector issues
        ldf f40, 0(r1)
        ldf f41, 8(r1)
        ldf f42, 16(r1)
        ; reduce the products with the paper's vector-sum trees
        fadd f24, f16, f20, vl=4, sra, srb
        fadd f28, f24, f26, vl=2, sra, srb
        fadd f30, f28, f29
        ; store the dot product
        stf f30, 64(r1)
        halt
    )";

    machine::Machine m;               // the paper's configuration
    machine::Tracer tracer;           // optional: cycle-level trace
    m.attachTracer(&tracer);
    m.loadProgram(assembler::assemble(source));

    // Architectural state is directly accessible.
    for (unsigned i = 0; i < 8; ++i) {
        m.fpu().regs().writeDouble(i, 1.0 + i);     // 1..8
        m.fpu().regs().writeDouble(8 + i, 0.5);     // x 0.5
    }
    m.cpu().writeReg(1, 0x1000);
    for (int i = 0; i < 3; ++i)
        m.mem().writeDouble(0x1000 + 8 * i, 9.0 + i);

    const machine::RunStats stats = m.run();

    std::printf("dot product = %.2f (expect 18.00)\n",
                m.mem().readDouble(0x1000 + 64));
    std::printf("\npipeline timing (I=issue, W=writeback):\n%s\n",
                tracer.renderTimeline().c_str());
    std::printf("%s", stats.summary().c_str());
    std::printf("\nsimulated time: %.0f ns at the 40 ns cycle\n",
                stats.seconds(m.config().cycleNs) * 1e9);
    return 0;
}
