/**
 * @file
 * Recurrences as vectors: the capability that distinguishes the
 * unified vector/scalar file from classical vector machines
 * (paper §2.1.1). Solves a first-order linear recurrence
 * x[i] = a*x[i-1] + b[i] in strips, using the Figure-8 pattern for
 * the additive part, and compares against the untimed reference
 * interpreter to show timing never changes semantics.
 */

#include <cstdio>
#include <vector>

#include "kernels/builder.hh"
#include "machine/interpreter.hh"
#include "machine/machine.hh"

int
main()
{
    using namespace mtfpu;
    using namespace mtfpu::kernels;

    const int n = 64;

    // Build the program with the kernel DSL: prefix-style recurrence
    // x[i] = x[i-1] + b[i] over strips of 8 (the LFK 11 pattern).
    KernelBuilder b;
    b.array("bv", n);
    b.array("x", n);
    const unsigned rb = b.ireg("rb"), rx = b.ireg("rx"),
                   rk = b.ireg("rk");
    const unsigned X = b.fgroup("X", 9); // X[0] = running value
    const unsigned B = b.fgroup("B", 8);
    const unsigned cone = b.fconst(1.0);
    b.fscratch(4);
    b.loadBase(rb, "bv");
    b.loadBase(rx, "x");
    b.evalInto(X, eConst(0.0));
    b.loop(rk, n / 8, [&] {
        b.vload(B, rb, 0, 8, 8);
        b.emitf("fadd f%u, f%u, f%u, vl=8, sra, srb", X + 1, X, B);
        b.vstore(X + 1, rx, 0, 8, 8);
        b.emitf("fmul f%u, f%u, f%u", X, X + 8, cone);
        b.emitf("addi r%u, r%u, 64", rb, rb);
        b.emitf("addi r%u, r%u, 64", rx, rx);
    });

    machine::MachineConfig cfg;
    cfg.memory.modelCaches = false;
    machine::Machine m(cfg);
    m.loadProgram(b.build());

    machine::Interpreter oracle;
    oracle.loadProgram(b.build());

    std::vector<double> input(n);
    for (int i = 0; i < n; ++i) {
        input[i] = 0.25 + 0.01 * i;
        m.mem().writeDouble(b.layout().base("bv") + 8 * i, input[i]);
        oracle.mem().writeDouble(b.layout().base("bv") + 8 * i,
                                 input[i]);
    }
    b.initConstants(m.mem());
    b.initConstants(oracle.mem());

    const machine::RunStats stats = m.run();
    oracle.run();

    double expect = 0;
    bool all_match = true;
    for (int i = 0; i < n; ++i) {
        expect += input[i];
        const double got =
            m.mem().readDouble(b.layout().base("x") + 8 * i);
        const double oracle_got =
            oracle.mem().readDouble(b.layout().base("x") + 8 * i);
        all_match = all_match && got == oracle_got && got == expect;
    }

    std::printf("prefix sum of %d elements, vectorized as a "
                "recurrence (VL=8 strips):\n",
                n);
    std::printf("  cycles: %llu (%.2f per element; a classical "
                "vector machine cannot vectorize this at all)\n",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<double>(stats.cycles) / n);
    std::printf("  vector elements issued: %llu in %llu instruction "
                "transfers\n",
                static_cast<unsigned long long>(
                    stats.fpu.elementsIssued),
                static_cast<unsigned long long>(
                    stats.fpAluTransfers));
    std::printf("  results match the untimed reference interpreter "
                "bit for bit: %s\n",
                all_match ? "yes" : "NO");
    return all_match ? 0 : 1;
}
