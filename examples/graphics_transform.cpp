/**
 * @file
 * The §3.1 graphics workload: transform a batch of points by a 4x4
 * matrix, the application the paper's introduction motivates for
 * short-vector machines ("many applications will always have very
 * short vectors", §2.2.2). Shows the per-point 35-cycle latency and
 * the effect of keeping the matrix resident in registers.
 */

#include <cmath>
#include <cstdio>

#include "kernels/graphics/transform.hh"

int
main()
{
    using namespace mtfpu;
    using kernels::graphics::runTransform;

    machine::MachineConfig cfg;
    cfg.memory.modelCaches = false;

    // A rotation-and-scale transform.
    const double c = std::cos(0.3), s = std::sin(0.3);
    const std::array<double, 16> mat{
        2 * c, -2 * s, 0, 0, //
        2 * s, 2 * c,  0, 0, //
        0,     0,      2, 0, //
        0,     0,      0, 1, //
    };

    std::printf("point            -> transformed (cycles)\n");
    for (int i = 0; i < 5; ++i) {
        const std::array<double, 4> p{1.0 + i, 2.0 - i, 0.5 * i, 1.0};
        const auto r = runTransform(cfg, false, mat, p);
        std::printf("(%4.1f %4.1f %4.1f %4.1f) -> "
                    "(%6.2f %6.2f %6.2f %6.2f)  %llu cycles, "
                    "%.1f MFLOPS\n",
                    p[0], p[1], p[2], p[3], r.out[0], r.out[1],
                    r.out[2], r.out[3],
                    static_cast<unsigned long long>(r.cycles),
                    r.mflops);
    }

    const std::array<double, 4> p{1.0, 2.0, 3.0, 4.0};
    const auto pre = runTransform(cfg, false, mat, p);
    const auto full = runTransform(cfg, true, mat, p);
    std::printf("\nmatrix preloaded: %llu cycles; loading it first: "
                "%llu cycles (+%llu, paper: +16)\n",
                static_cast<unsigned long long>(pre.cycles),
                static_cast<unsigned long long>(full.cycles),
                static_cast<unsigned long long>(full.cycles -
                                                pre.cycles));
    std::printf("paper: 35 cycles = 1.4 us per point, 20 MFLOPS — "
                "\"better than that often provided by special-purpose "
                "graphics hardware\" (§3.1)\n");
    return 0;
}
