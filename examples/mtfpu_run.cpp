/**
 * @file
 * Standalone runner: assemble a .s file and execute it on the
 * MultiTitan simulator. Makes the simulator usable as a tool without
 * writing any C++.
 *
 * Usage: mtfpu_run <file.s> [--ideal] [--trace] [--list]
 *                  [--fpreg N=VALUE]... [--intreg N=VALUE]...
 *                  [--max-cycles N]
 *
 * Exit code is 0 on a clean halt. After the run the tool prints the
 * statistics and the nonzero architectural state.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "isa/disasm.hh"
#include "machine/machine.hh"

int
main(int argc, char **argv)
{
    using namespace mtfpu;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <file.s> [--ideal] [--trace] [--list] "
                     "[--fpreg N=V]... [--intreg N=V]... "
                     "[--max-cycles N]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    machine::MachineConfig cfg;
    bool trace = false, list = false;
    struct RegInit { bool fp; unsigned reg; double val; };
    std::vector<RegInit> inits;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--ideal") {
            cfg.memory.modelCaches = false;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--max-cycles" && i + 1 < argc) {
            cfg.maxCycles = std::strtoull(argv[++i], nullptr, 10);
        } else if ((arg == "--fpreg" || arg == "--intreg") &&
                   i + 1 < argc) {
            const char *spec = argv[++i];
            const char *eq = std::strchr(spec, '=');
            if (!eq) {
                std::fprintf(stderr, "bad register spec '%s'\n", spec);
                return 2;
            }
            inits.push_back(RegInit{arg == "--fpreg",
                                    static_cast<unsigned>(
                                        std::atoi(spec)),
                                    std::atof(eq + 1)});
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    try {
        const assembler::Program prog = assembler::assemble(ss.str());
        if (list)
            std::printf("%s\n", isa::disassembleProgram(prog).c_str());

        machine::Machine m(cfg);
        machine::Tracer tracer;
        if (trace)
            m.attachTracer(&tracer);
        m.loadProgram(prog);
        for (const RegInit &r : inits) {
            if (r.fp)
                m.fpu().regs().writeDouble(r.reg, r.val);
            else
                m.cpu().writeReg(r.reg, static_cast<uint64_t>(
                                            static_cast<int64_t>(r.val)));
        }

        const machine::RunStats stats = m.run();

        if (trace)
            std::printf("%s\n", tracer.renderTimeline().c_str());
        std::printf("%s", stats.summary().c_str());

        std::printf("\nnonzero FPU registers:\n");
        for (unsigned r = 0; r < isa::kNumFpuRegs; ++r) {
            if (m.fpu().regs().read(r) != 0) {
                std::printf("  f%-2u = %.17g\n", r,
                            m.fpu().regs().readDouble(r));
            }
        }
        std::printf("nonzero integer registers:\n");
        for (unsigned r = 1; r < isa::kNumIntRegs; ++r) {
            if (m.cpu().readReg(r) != 0) {
                std::printf("  r%-2u = %lld\n", r,
                            static_cast<long long>(m.cpu().readReg(r)));
            }
        }
        if (m.fpu().psw().flags.any()) {
            const auto &f = m.fpu().psw().flags;
            std::printf("PSW flags:%s%s%s%s%s\n",
                        f.overflow ? " overflow" : "",
                        f.underflow ? " underflow" : "",
                        f.inexact ? " inexact" : "",
                        f.invalid ? " invalid" : "",
                        f.divByZero ? " div-by-zero" : "");
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
